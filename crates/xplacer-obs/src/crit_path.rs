//! Causal critical-path blame: which (kernel × allocation × event-kind)
//! cells the run's end-to-end simulated time is actually spent in.
//!
//! The profiler ([`crate::profile`]) answers "how much did each cell
//! cost"; this module answers the sharper question "how much of the
//! *elapsed wall-clock* is each cell responsible for". The two differ as
//! soon as streams overlap: a memcpy hidden behind a kernel costs
//! bandwidth but zero elapsed time, and blaming it would send the
//! programmer chasing a free lunch.
//!
//! # DAG construction
//!
//! The attributed event stream already encodes the dependency structure
//! the simulator executed under (see DESIGN §16):
//!
//! * **Per-stream program order** — events on one stream never overlap;
//!   each stream is rebuilt as a sequence of non-overlapping segments.
//! * **Kernel-span containment** — an in-kernel event (`AttrCtx.kernel`,
//!   `launch_seq`) is a sub-interval of its kernel's `[start, end]` span;
//!   the span remainder is the kernel's compute.
//! * **Fault → migration → access causality** — the driver charges fault
//!   service, transfer, invalidation, and writeback serially inside the
//!   faulting context, so consecutive same-stamp events partition one
//!   access's serial cost in emission order.
//!
//! The longest path is then extracted by a backward sweep from
//! `elapsed_ns`: at every instant the segment that *finishes last* is the
//! one the run was waiting on; segments entirely hidden behind the chosen
//! path (concurrent streams) receive zero blame. Time not covered by any
//! event is host compute — the simulator advances the clock for host word
//! accesses without emitting events — and is blamed on
//! `(<host>, (no-alloc), compute)`.
//!
//! # Exact conservation
//!
//! Blame is accounted in integer **ticks** at [`TICKS_PER_NS`] = 1024 per
//! nanosecond (a power of two). The sweep partitions `[0, path_ticks]`
//! exactly, so tick blame sums to the path length as integers; converting
//! `m` ticks to `m / 1024.0` ns is exact in IEEE-754 for every `m` below
//! 2^53, hence the f64 `blame_ns` column sums **bit-exactly** to
//! [`BlameReport::path_ns`] in any association order. `path_ns` itself is
//! `elapsed_ns` quantized to the tick grid (within 2^-11 ns of the raw
//! value).

use std::collections::BTreeMap;

use hetsim::Event;

use crate::events::EventTrace;
use crate::json::Json;
use crate::profile::{HOST_KERNEL, NO_ALLOC};

/// Schema tag of the blame JSON document.
pub const BLAME_SCHEMA: &str = "xplacer-blame/1";

/// Integer accounting resolution: ticks per simulated nanosecond. A power
/// of two, so `ticks as f64 / TICKS_PER_NS` is exact (no rounding) for
/// every tick count below 2^53.
pub const TICKS_PER_NS: f64 = 1024.0;

/// Pseudo event-kind for span time not attributed to any driver event
/// (kernel launch overhead + parallel compute, and uninstrumented host
/// word time between events).
pub const COMPUTE_KIND: &str = "compute";

/// Event kinds a placement fix (advice, prefetch, pinning) could remove:
/// the set zeroed per-allocation by the what-if column.
pub const WHAT_IF_KINDS: &[&str] = &[
    "page_fault",
    "migration",
    "read_dup",
    "invalidate",
    "evict",
    "prefetch",
    "memcpy",
];

fn ticks(ns: f64) -> i64 {
    (ns * TICKS_PER_NS).round() as i64
}

fn ns(t: u64) -> f64 {
    t as f64 / TICKS_PER_NS
}

/// One blame row: critical-path time charged to a (kernel, allocation,
/// event-kind) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameRow {
    /// Kernel name, or [`HOST_KERNEL`] for host-context work.
    pub kernel: String,
    /// Allocation base, when the events carried one.
    pub alloc: Option<u64>,
    /// Display label for the allocation ([`NO_ALLOC`] when `alloc` is
    /// `None`, hex base when unnamed).
    pub label: String,
    /// Event kind, or [`COMPUTE_KIND`] for unattributed span/host time.
    pub kind: String,
    /// Critical-path blame in integer ticks (exact).
    pub blame_ticks: u64,
    /// `blame_ticks / 1024.0` — exact, so rows sum bit-exactly to
    /// [`BlameReport::path_ns`].
    pub blame_ns: f64,
    /// Number of distinct path segments charged to this row.
    pub segments: u64,
}

/// One what-if line: the upper bound a single allocation's placement fix
/// could save.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    pub base: u64,
    pub label: String,
    /// Critical-path ticks this allocation's [`WHAT_IF_KINDS`] events hold.
    pub savable_ticks: u64,
    pub savable_ns: f64,
    /// `path_ns - savable_ns`: the best path a fix of this allocation
    /// alone could reach.
    pub path_if_fixed_ns: f64,
}

/// The critical-path blame report of one run.
#[derive(Debug, Clone)]
pub struct BlameReport {
    pub workload: String,
    pub platform: String,
    /// Raw end-to-end simulated time of the run.
    pub elapsed_ns: f64,
    /// `elapsed_ns` on the tick grid: the exact total the rows partition.
    pub path_ticks: u64,
    /// `path_ticks / 1024.0`; Σ `rows[i].blame_ns` equals this bit-exactly.
    pub path_ns: f64,
    pub events_recorded: u64,
    pub events_dropped: u64,
    /// Blame rows, largest first.
    pub rows: Vec<BlameRow>,
    /// Per-allocation savings bounds, largest first.
    pub what_if: Vec<WhatIf>,
}

/// A half-open interval `[start, end)` of the timeline owned by one row.
struct Seg {
    start: i64,
    end: i64,
    key: usize,
}

impl BlameReport {
    /// Reconstruct the dependency DAG from `trace` and charge the longest
    /// path. Pure and deterministic: identical traces yield byte-identical
    /// reports.
    pub fn build(trace: &EventTrace) -> BlameReport {
        let path_ticks = ticks(trace.elapsed_ns).max(0);

        // Row-key interning: (kernel, alloc, kind) -> dense id.
        let mut key_ids: BTreeMap<(String, Option<u64>, String), usize> = BTreeMap::new();
        let mut keys: Vec<(String, Option<u64>, String)> = Vec::new();
        let mut intern = |kernel: &str, alloc: Option<u64>, kind: &str| -> usize {
            let k = (kernel.to_string(), alloc, kind.to_string());
            *key_ids.entry(k.clone()).or_insert_with(|| {
                keys.push(k);
                keys.len() - 1
            })
        };
        let host_compute = intern(HOST_KERNEL, None, COMPUTE_KIND);

        // ---- timeline reconstruction -------------------------------
        // Per-stream pack cursor: streams are sequential, so segments on
        // one stream never overlap; packing also absorbs the two stamp
        // conventions (host accesses stamp before the clock charge,
        // lifecycle events after it).
        let mut cursors: BTreeMap<usize, i64> = BTreeMap::new();
        // In-kernel events waiting for their (name, launch_seq) span.
        type Pending = Vec<(usize, i64, i64)>; // (key, cost, t)
        let mut pending: BTreeMap<(String, u64), Pending> = BTreeMap::new();
        let mut segs: Vec<Seg> = Vec::new();

        for te in &trace.events {
            let kernel = te.ctx.kernel_name().unwrap_or(HOST_KERNEL).to_string();
            match &te.event {
                Event::KernelBegin { .. } => {} // zero-cost launch marker
                Event::KernelEnd {
                    name,
                    stream,
                    start_ns,
                    end_ns,
                } => {
                    // Kernel-span containment: the span is partitioned
                    // into its attributed sub-events (packed in emission
                    // order from the start) plus a compute remainder.
                    let s = ticks(*start_ns).max(0);
                    let e = ticks(*end_ns).max(s);
                    let mut pos = s;
                    for (key, cost, _) in pending
                        .remove(&(name.clone(), te.ctx.launch_seq))
                        .unwrap_or_default()
                    {
                        let c = cost.clamp(0, e - pos);
                        if c > 0 {
                            segs.push(Seg {
                                start: pos,
                                end: pos + c,
                                key,
                            });
                            pos += c;
                        }
                    }
                    if e > pos {
                        segs.push(Seg {
                            start: pos,
                            end: e,
                            key: intern(name, None, COMPUTE_KIND),
                        });
                    }
                    let cur = cursors.entry(stream.0).or_insert(0);
                    *cur = (*cur).max(e);
                }
                ev if te.ctx.kernel.is_some() => {
                    // In-kernel point event: buffer until its span closes.
                    let key = intern(&kernel, te.ctx.alloc, ev.kind_name());
                    pending
                        .entry((kernel, te.ctx.launch_seq))
                        .or_default()
                        .push((key, ticks(te.cost_ns).max(0), ticks(te.t_ns)));
                }
                ev => {
                    let key = intern(&kernel, te.ctx.alloc, ev.kind_name());
                    let stream = te.effective_stream().0;
                    let cur = cursors.entry(stream).or_insert(0);
                    if let Some((s0, e0)) = ev.span() {
                        // Host-issued span (memcpy, prefetch) occupies its
                        // stream for its scheduled interval.
                        let s = ticks(s0).max(*cur).max(0);
                        let e = ticks(e0).max(s);
                        if e > s {
                            segs.push(Seg {
                                start: s,
                                end: e,
                                key,
                            });
                        }
                        *cur = (*cur).max(e);
                    } else {
                        // Host point event, stamped at/around completion:
                        // pack its cost against the stream cursor.
                        let c = ticks(te.cost_ns).max(0);
                        let start = (ticks(te.t_ns) - c).max(*cur).max(0);
                        if c > 0 {
                            segs.push(Seg {
                                start,
                                end: start + c,
                                key,
                            });
                        }
                        *cur = (*cur).max(start + c);
                    }
                }
            }
        }
        // In-kernel events whose span fell off the ring: pack them as
        // point segments from their stamps so their cost still
        // participates (same-stamp parts of one access stay sequential).
        for ((_name, _seq), subs) in pending {
            let mut pos = 0i64;
            for (key, cost, t) in subs {
                let start = t.max(pos).max(0);
                if cost > 0 {
                    segs.push(Seg {
                        start,
                        end: start + cost,
                        key,
                    });
                }
                pos = start + cost;
            }
        }

        // ---- backward longest-path sweep ---------------------------
        // Walk from elapsed toward 0, always choosing the segment that
        // finishes last: that is the activity the run was waiting on.
        // Segments beginning at/after the cursor are hidden behind the
        // chosen path (concurrent streams) and get zero blame. Every tick
        // of [0, path_ticks] is charged exactly once, so conservation is
        // exact by construction.
        let mut order: Vec<usize> = (0..segs.len()).collect();
        order.sort_by(|&a, &b| {
            segs[a]
                .end
                .cmp(&segs[b].end)
                .then(segs[a].start.cmp(&segs[b].start))
                .then(a.cmp(&b))
        });
        let mut blame: Vec<(u64, u64)> = vec![(0, 0); keys.len()]; // (ticks, segments)
        let mut charge = |key: usize, t: i64| {
            if t > 0 {
                blame[key].0 += t as u64;
                blame[key].1 += 1;
            }
        };
        let mut cursor = path_ticks;
        for &i in order.iter().rev() {
            if cursor <= 0 {
                break;
            }
            let s = &segs[i];
            if s.start >= cursor {
                continue; // entirely covered by the path chosen so far
            }
            let hi = s.end.min(cursor);
            // Gap above this segment: uninstrumented host time.
            charge(host_compute, cursor - hi);
            charge(s.key, hi - s.start);
            cursor = s.start;
        }
        charge(host_compute, cursor);

        // ---- rows --------------------------------------------------
        let label_of = |base: Option<u64>| -> String {
            match base {
                None => NO_ALLOC.to_string(),
                Some(b) => trace
                    .names
                    .iter()
                    .find(|(nb, _)| *nb == b)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| format!("0x{b:x}")),
            }
        };
        let mut rows: Vec<BlameRow> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| blame[*i].0 > 0)
            .map(|(i, (kernel, alloc, kind))| BlameRow {
                kernel: kernel.clone(),
                alloc: *alloc,
                label: label_of(*alloc),
                kind: kind.clone(),
                blame_ticks: blame[i].0,
                blame_ns: ns(blame[i].0),
                segments: blame[i].1,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.blame_ticks
                .cmp(&a.blame_ticks)
                .then_with(|| a.kernel.cmp(&b.kernel))
                .then_with(|| a.alloc.cmp(&b.alloc))
                .then_with(|| a.kind.cmp(&b.kind))
        });

        // ---- what-if -----------------------------------------------
        let mut savable: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &rows {
            if let Some(base) = r.alloc {
                if WHAT_IF_KINDS.contains(&r.kind.as_str()) {
                    *savable.entry(base).or_default() += r.blame_ticks;
                }
            }
        }
        let path_ns = ns(path_ticks as u64);
        let mut what_if: Vec<WhatIf> = savable
            .into_iter()
            .filter(|(_, t)| *t > 0)
            .map(|(base, t)| WhatIf {
                base,
                label: label_of(Some(base)),
                savable_ticks: t,
                savable_ns: ns(t),
                path_if_fixed_ns: ns(path_ticks as u64 - t),
            })
            .collect();
        what_if.sort_by(|a, b| {
            b.savable_ticks
                .cmp(&a.savable_ticks)
                .then(a.base.cmp(&b.base))
        });

        BlameReport {
            workload: trace.workload.clone(),
            platform: trace.platform_name.clone(),
            elapsed_ns: trace.elapsed_ns,
            path_ticks: path_ticks as u64,
            path_ns,
            events_recorded: trace.recorded,
            events_dropped: trace.dropped,
            rows,
            what_if,
        }
    }

    /// Percentage of the path a tick count holds (0 when the path is
    /// empty).
    fn pct(&self, t: u64) -> f64 {
        if self.path_ticks == 0 {
            0.0
        } else {
            t as f64 * 100.0 / self.path_ticks as f64
        }
    }

    /// Human-readable blame tables. `top` bounds the listings; the
    /// truncated remainder is summarized so the printed numbers still
    /// account for the whole path.
    pub fn render(&self, top: usize) -> String {
        let ms = |v: f64| v / 1e6;
        let mut s = String::new();
        s.push_str(&format!(
            "==== xplacer blame: {} on {} ====\n",
            self.workload, self.platform
        ));
        s.push_str(&format!(
            "critical path: {:.3} ms (elapsed {:.3} ms)   events: {} recorded, {} dropped\n",
            ms(self.path_ns),
            ms(self.elapsed_ns),
            self.events_recorded,
            self.events_dropped
        ));
        if self.events_dropped > 0 {
            s.push_str("WARNING: the event ring dropped events; blame beyond the retained stream is charged to host compute.\n");
        }
        s.push_str("\nblame by (kernel x allocation x kind) — sums exactly to the path:\n");
        s.push_str(&format!(
            "  {:<24} {:<20} {:<12} {:>12} {:>8} {:>6}\n",
            "kernel", "allocation", "kind", "blame ms", "% path", "segs"
        ));
        if self.rows.is_empty() {
            s.push_str("  (empty path)\n");
        }
        for r in self.rows.iter().take(top) {
            s.push_str(&format!(
                "  {:<24} {:<20} {:<12} {:>12.3} {:>7.1}% {:>6}\n",
                r.kernel,
                r.label,
                r.kind,
                ms(r.blame_ns),
                self.pct(r.blame_ticks),
                r.segments
            ));
        }
        if self.rows.len() > top {
            let rest: u64 = self.rows.iter().skip(top).map(|r| r.blame_ticks).sum();
            s.push_str(&format!(
                "  ... {} more rows holding {:.3} ms ({:.1}%)\n",
                self.rows.len() - top,
                ms(ns(rest)),
                self.pct(rest)
            ));
        }
        s.push_str("\nwhat-if: zero one allocation's fault+transfer path cost (upper bound):\n");
        if self.what_if.is_empty() {
            s.push_str("  (no allocation holds fault or transfer time on the path)\n");
        }
        for (i, w) in self.what_if.iter().take(top).enumerate() {
            s.push_str(&format!(
                "  {:>2}. {:<20} buys at most {:>10.3} ms ({:>5.1}%) -> path {:.3} ms\n",
                i + 1,
                w.label,
                ms(w.savable_ns),
                self.pct(w.savable_ticks),
                ms(w.path_if_fixed_ns)
            ));
        }
        s
    }

    /// JSON document (schema [`BLAME_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut j = Json::obj();
                j.set("kernel", r.kernel.as_str().into())
                    .set("alloc", r.label.as_str().into());
                if let Some(b) = r.alloc {
                    j.set("base", format!("0x{b:x}").into());
                }
                j.set("kind", r.kind.as_str().into())
                    .set("blame_ns", Json::Num(r.blame_ns))
                    .set("blame_ticks", r.blame_ticks.into())
                    .set("pct", Json::Num(self.pct(r.blame_ticks)))
                    .set("segments", r.segments.into());
                j
            })
            .collect();
        let what_if = self
            .what_if
            .iter()
            .map(|w| {
                let mut j = Json::obj();
                j.set("alloc", w.label.as_str().into())
                    .set("base", format!("0x{:x}", w.base).into())
                    .set("savable_ns", Json::Num(w.savable_ns))
                    .set("pct", Json::Num(self.pct(w.savable_ticks)))
                    .set("path_if_fixed_ns", Json::Num(w.path_if_fixed_ns));
                j
            })
            .collect();
        let mut events = Json::obj();
        events
            .set("recorded", self.events_recorded.into())
            .set("dropped", self.events_dropped.into());
        let mut j = Json::obj();
        j.set("schema", BLAME_SCHEMA.into())
            .set("workload", self.workload.as_str().into())
            .set("platform", self.platform.as_str().into())
            .set("elapsed_ns", Json::Num(self.elapsed_ns))
            .set("path_ns", Json::Num(self.path_ns))
            .set("ticks_per_ns", Json::Num(TICKS_PER_NS))
            .set("events", events)
            .set("rows", Json::Arr(rows))
            .set("what_if", Json::Arr(what_if));
        j
    }

    /// Folded stacks (`platform;kernel;alloc;kind blame_ns`) for
    /// flamegraph tooling — widths show *path* time, so hidden/overlapped
    /// work disappears instead of inflating the graph.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let blame = r.blame_ns.round() as u64;
            if blame > 0 {
                out.push_str(&format!(
                    "{};{};{};{} {}\n",
                    self.platform, r.kernel, r.label, r.kind, blame
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{AttrCtx, StreamId, TimedEvent, DEFAULT_STREAM};

    fn trace(elapsed_ns: f64, events: Vec<TimedEvent>) -> EventTrace {
        EventTrace {
            workload: "unit".into(),
            platform_name: "test".into(),
            page_size: 65_536,
            link_bw: 12.0,
            elapsed_ns,
            recorded: events.len() as u64,
            dropped: 0,
            names: vec![(0x1000, "buf".into())],
            events,
        }
    }

    fn host_point(t: f64, cost: f64, alloc: Option<u64>, event: Event) -> TimedEvent {
        TimedEvent {
            t_ns: t,
            cost_ns: cost,
            ctx: AttrCtx {
                alloc,
                ..AttrCtx::host()
            },
            event,
        }
    }

    fn total(r: &BlameReport) -> f64 {
        r.rows.iter().map(|x| x.blame_ns).sum()
    }

    #[test]
    fn empty_trace_is_an_empty_report() {
        let r = BlameReport::build(&trace(0.0, vec![]));
        assert_eq!(r.path_ticks, 0);
        assert!(r.rows.is_empty() && r.what_if.is_empty());
        assert!(r.render(5).contains("(empty path)"));
        assert_eq!(
            r.to_json().get("schema").unwrap().as_str(),
            Some(BLAME_SCHEMA)
        );
    }

    #[test]
    fn uninstrumented_time_is_host_compute() {
        let r = BlameReport::build(&trace(1000.0, vec![]));
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].kernel, HOST_KERNEL);
        assert_eq!(r.rows[0].kind, COMPUTE_KIND);
        assert_eq!(r.rows[0].blame_ns, 1000.0);
        assert_eq!(total(&r), r.path_ns);
    }

    #[test]
    fn kernel_span_is_partitioned_into_events_plus_compute() {
        let ctx = AttrCtx {
            kernel: Some("k".into()),
            launch_seq: 1,
            stream: DEFAULT_STREAM,
            alloc: Some(0x1000),
        };
        let events = vec![
            TimedEvent {
                t_ns: 100.0,
                cost_ns: 30.0,
                ctx: ctx.clone(),
                event: Event::PageFault {
                    dev: hetsim::Device::GPU0,
                    page: 0,
                    write: false,
                },
            },
            TimedEvent {
                t_ns: 100.0,
                cost_ns: 50.0,
                ctx: ctx.clone(),
                event: Event::Migration {
                    page: 0,
                    to: hetsim::Device::GPU0,
                    bytes: 65_536,
                },
            },
            TimedEvent {
                t_ns: 300.0,
                cost_ns: 200.0,
                // As emitted by the machine: the span carries the
                // kernel's own context (name + launch_seq).
                ctx: AttrCtx {
                    alloc: None,
                    ..ctx.clone()
                },
                event: Event::KernelEnd {
                    name: "k".into(),
                    stream: DEFAULT_STREAM,
                    start_ns: 100.0,
                    end_ns: 300.0,
                },
            },
        ];
        let r = BlameReport::build(&trace(400.0, events));
        let get = |kernel: &str, kind: &str| {
            r.rows
                .iter()
                .find(|x| x.kernel == kernel && x.kind == kind)
                .map(|x| x.blame_ns)
                .unwrap_or(0.0)
        };
        assert_eq!(get("k", "page_fault"), 30.0);
        assert_eq!(get("k", "migration"), 50.0);
        assert_eq!(get("k", COMPUTE_KIND), 120.0); // 200 span - 80 attributed
        assert_eq!(get(HOST_KERNEL, COMPUTE_KIND), 200.0); // 0..100 + 300..400
        assert_eq!(total(&r), r.path_ns);
        // The faulting allocation is the only what-if candidate.
        assert_eq!(r.what_if.len(), 1);
        assert_eq!(r.what_if[0].label, "buf");
        assert_eq!(r.what_if[0].savable_ns, 80.0);
        assert_eq!(r.what_if[0].path_if_fixed_ns, 320.0);
    }

    #[test]
    fn overlapped_stream_work_gets_zero_blame() {
        // A kernel on stream 1 spans [100, 300]; a memcpy on stream 2 is
        // entirely hidden under it. Only the kernel is on the path.
        let events = vec![
            host_point(
                300.0,
                0.0,
                None,
                Event::KernelEnd {
                    name: "k".into(),
                    stream: StreamId(1),
                    start_ns: 100.0,
                    end_ns: 300.0,
                },
            ),
            TimedEvent {
                t_ns: 250.0,
                cost_ns: 100.0,
                ctx: AttrCtx::host(),
                event: Event::Memcpy {
                    dst: 0x2000,
                    src: 0x1000,
                    bytes: 4096,
                    kind: hetsim::CopyKind::HostToDevice,
                    stream: StreamId(2),
                    start_ns: 150.0,
                    end_ns: 250.0,
                },
            },
        ];
        let r = BlameReport::build(&trace(300.0, events));
        let memcpy = r.rows.iter().find(|x| x.kind == "memcpy");
        assert!(memcpy.is_none(), "hidden copy must get zero blame");
        let k = r.rows.iter().find(|x| x.kernel == "k").unwrap();
        assert_eq!(k.blame_ns, 200.0);
        assert_eq!(total(&r), r.path_ns);
    }

    #[test]
    fn partially_exposed_span_is_charged_only_for_the_exposed_part() {
        // memcpy [150, 350] outlives the kernel [100, 300]: the path is
        // host 0..100, kernel 100..300 hidden under nothing... actually
        // the copy finishes last, so the tail [300, 350] — and the sweep
        // then follows the copy backward from 300 too. The copy's blame
        // is its exposure as the last finisher: [100?]. Verify exact
        // conservation and that both appear.
        let events = vec![
            host_point(
                300.0,
                0.0,
                None,
                Event::KernelEnd {
                    name: "k".into(),
                    stream: StreamId(1),
                    start_ns: 100.0,
                    end_ns: 300.0,
                },
            ),
            host_point(
                350.0,
                200.0,
                Some(0x1000),
                Event::Memcpy {
                    dst: 0x2000,
                    src: 0x1000,
                    bytes: 4096,
                    kind: hetsim::CopyKind::HostToDevice,
                    stream: StreamId(2),
                    start_ns: 150.0,
                    end_ns: 350.0,
                },
            ),
        ];
        let r = BlameReport::build(&trace(350.0, events));
        let copy = r.rows.iter().find(|x| x.kind == "memcpy").unwrap();
        // The copy is the last finisher: it owns [150, 350]; the kernel
        // only the exposed [100, 150].
        assert_eq!(copy.blame_ns, 200.0);
        let k = r.rows.iter().find(|x| x.kernel == "k").unwrap();
        assert_eq!(k.blame_ns, 50.0);
        assert_eq!(total(&r), r.path_ns);
    }

    #[test]
    fn conservation_is_bit_exact_with_awkward_float_stamps() {
        // Fractional stamps that don't land on the tick grid still
        // partition exactly after quantization.
        let mut events = vec![];
        let mut t = 0.0;
        for i in 0..100 {
            t += 13.7 + (i as f64) * 0.003;
            events.push(host_point(
                t,
                7.1,
                Some(0x1000),
                Event::Migration {
                    page: i,
                    to: hetsim::Device::GPU0,
                    bytes: 65_536,
                },
            ));
        }
        let r = BlameReport::build(&trace(t + 5.0, events));
        let sum: f64 = r.rows.iter().map(|x| x.blame_ns).sum();
        assert_eq!(sum.to_bits(), r.path_ns.to_bits(), "bit-exact conservation");
        assert!((r.path_ns - r.elapsed_ns).abs() <= 1.0 / 2048.0);
    }

    #[test]
    fn report_is_deterministic() {
        let mk = || {
            let events = vec![host_point(
                50.0,
                20.0,
                Some(0x1000),
                Event::PageFault {
                    dev: hetsim::Device::Cpu,
                    page: 3,
                    write: true,
                },
            )];
            BlameReport::build(&trace(80.0, events))
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.render(10), b.render(10));
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
        assert_eq!(a.folded(), b.folded());
    }
}
