//! The `xplacer top` terminal dashboard: sparklines over the telemetry
//! epochs, a rolling bandwidth gauge, the hottest allocations, and the
//! anti-pattern episodes — rendered as plain text frames.
//!
//! Rendering is a pure function of ([`Telemetry`], episodes, frame info):
//! no wall-clock, no locale, no terminal queries. With `--ascii` the
//! output is 7-bit ASCII, so replay frames are byte-deterministic and can
//! be golden-snapshotted. [`replay`] drives the whole pipeline offline
//! from a recorded [`EventTrace`] — the analysis equivalent of running
//! live, minus the simulator.

use std::fmt::Write as _;

use hetsim::MemHook;
use xplacer_core::{Episode, OnlineAnalyzer, OnlineConfig};

use crate::events::EventTrace;
use crate::timeseries::{Sample, Telemetry, TelemetryConfig};

/// Unicode bar ramp (zero renders as space).
const RAMP_UNICODE: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// ASCII ramp, matching the heatmap's palette.
const RAMP_ASCII: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Width of the bandwidth gauge bar, in cells.
const GAUGE_CELLS: usize = 20;

/// Presentation knobs for a dashboard frame.
#[derive(Debug, Clone)]
pub struct DashOpts {
    /// Use the 7-bit ASCII ramp (golden-snapshot safe).
    pub ascii: bool,
    /// Maximum sparkline width in columns; longer series are chunk-summed.
    pub width: usize,
    /// Number of hottest allocations to list.
    pub top_k: usize,
}

impl Default for DashOpts {
    fn default() -> Self {
        DashOpts {
            ascii: false,
            width: 64,
            top_k: 5,
        }
    }
}

/// Everything a frame shows that is not in the telemetry itself.
#[derive(Debug, Clone)]
pub struct FrameInfo<'a> {
    pub workload: &'a str,
    pub platform: &'a str,
    /// 1-based frame number and the total frame count.
    pub frame: usize,
    pub frames: usize,
    /// Simulated time the frame represents.
    pub now_ns: f64,
    /// Event-stream health (from the recorder).
    pub recorded: u64,
    pub dropped: u64,
    /// Allocation display names, by base address.
    pub names: &'a [(u64, String)],
}

impl FrameInfo<'_> {
    fn label(&self, base: u64) -> String {
        match self.names.iter().find(|(b, _)| *b == base) {
            Some((_, name)) => name.clone(),
            None => format!("0x{base:x}"),
        }
    }
}

/// Fold a bucket series into at most `width` columns by chunk-summing —
/// the same exact-integer merge the telemetry uses, so a sparkline column
/// is itself a conserved sum.
fn fold(buckets: &[Sample], width: usize, get: fn(&Sample) -> u64) -> Vec<u64> {
    if buckets.is_empty() {
        return Vec::new();
    }
    let chunk = buckets.len().div_ceil(width.max(1));
    buckets
        .chunks(chunk)
        .map(|c| c.iter().map(get).sum())
        .collect()
}

fn sparkline(values: &[u64], ramp: &[char]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if v == 0 || max == 0 {
                ramp[0]
            } else {
                // Nonzero values always get at least the first visible glyph.
                let idx = 1 + (v - 1) as usize * (ramp.len() - 2) / max.max(1) as usize;
                ramp[idx.min(ramp.len() - 1)]
            }
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Render one dashboard frame as plain text (trailing newline included).
pub fn render_frame(
    t: &Telemetry,
    episodes: &[Episode],
    info: &FrameInfo<'_>,
    opts: &DashOpts,
) -> String {
    let ramp = if opts.ascii { RAMP_ASCII } else { RAMP_UNICODE };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "xplacer top - {} on {}  [frame {}/{}]",
        info.workload, info.platform, info.frame, info.frames
    );
    let _ = writeln!(
        out,
        "sim t={}  epoch={} x {} buckets  downsamples={}  events recorded={} dropped={}",
        fmt_ns(info.now_ns),
        fmt_ns(t.epoch_ns()),
        t.global().len(),
        t.downsamples,
        info.recorded,
        info.dropped
    );

    out.push_str("counters (lifetime total | per-epoch sparkline):\n");
    for (name, get) in Sample::FIELDS {
        let series = fold(t.global(), opts.width, *get);
        let _ = writeln!(
            out,
            "  {:<15} {:>12} |{}|",
            name,
            get(t.total()),
            sparkline(&series, ramp)
        );
    }

    // Rolling bandwidth gauge: the latest epoch's traffic vs. model peak.
    let last = t.global().last().copied().unwrap_or_default();
    let gbps = last.bytes_moved as f64 / t.epoch_ns();
    let frac = t.utilization(&last).clamp(0.0, 1.0);
    let filled = (frac * GAUGE_CELLS as f64).round() as usize;
    let _ = writeln!(
        out,
        "bandwidth [{}{}] {:.2} GB/s of {:.2} GB/s peak ({:.1}%)",
        "#".repeat(filled),
        "-".repeat(GAUGE_CELLS - filled),
        gbps,
        t.peak_bw(),
        t.utilization(&last) * 100.0
    );

    out.push_str("hottest allocations (by bytes moved):\n");
    let mut hot: Vec<_> = t.allocs().collect();
    hot.sort_by(|a, b| {
        b.total
            .bytes_moved
            .cmp(&a.total.bytes_moved)
            .then(b.total.events.cmp(&a.total.events))
            .then(a.base.cmp(&b.base))
    });
    let shown = hot.iter().take(opts.top_k).filter(|a| a.total.events > 0);
    let mut any = false;
    for a in shown {
        any = true;
        let _ = writeln!(
            out,
            "  {:<12} {:<16} {:>10} moved  {:>6} faults  {:>6} migr  {}",
            format!("0x{:x}", a.base),
            info.label(a.base),
            fmt_bytes(a.total.bytes_moved),
            a.total.faults,
            a.total.migrations_h2d + a.total.migrations_d2h,
            if a.live { "live" } else { "freed" }
        );
    }
    if !any {
        out.push_str("  (no allocation activity)\n");
    }

    out.push_str("episodes:\n");
    if episodes.is_empty() {
        out.push_str("  (none detected)\n");
    }
    for e in episodes {
        let target = match e.alloc {
            Some(a) => info.label(a),
            None => "machine-wide".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<19} {:<16} span {:>10}  cost {:>10}  pages {:<5} trips {:<5}{}",
            e.kind.label(),
            target,
            fmt_ns(e.span_ns()),
            fmt_ns(e.cost_ns),
            e.pages,
            e.trips,
            if e.active { " [active]" } else { "" }
        );
    }
    out
}

/// Everything [`replay`] produced: the rendered frames plus the final
/// telemetry and sealed episodes (for `--timeseries-out` alongside).
pub struct ReplayOutcome {
    pub frames: Vec<String>,
    pub telemetry: Telemetry,
    pub episodes: Vec<Episode>,
}

/// Re-run the telemetry + episode pipeline over a recorded trace and
/// render `frames` evenly spaced dashboard frames. Deterministic: same
/// trace, same options, byte-identical frames.
pub fn replay(
    trace: &EventTrace,
    cfg: TelemetryConfig,
    ocfg: OnlineConfig,
    frames: usize,
    opts: &DashOpts,
) -> ReplayOutcome {
    let mut tele = Telemetry::new(cfg, trace.link_bw);
    let mut online = OnlineAnalyzer::new(ocfg);
    let frames = frames.max(1);
    let extent = trace
        .events
        .last()
        .map(|e| e.t_ns)
        .unwrap_or(0.0)
        .max(trace.elapsed_ns)
        .max(1.0);
    let mut rendered = Vec::with_capacity(frames);
    let mut next = 0usize;
    for f in 1..=frames {
        let boundary = extent * f as f64 / frames as f64;
        while next < trace.events.len() && trace.events[next].t_ns <= boundary {
            MemHook::on_event(&mut tele, &trace.events[next]);
            MemHook::on_event(&mut online, &trace.events[next]);
            next += 1;
        }
        let episodes = if f == frames {
            online.finish();
            online.episodes().to_vec()
        } else {
            online.snapshot()
        };
        let info = FrameInfo {
            workload: &trace.workload,
            platform: &trace.platform_name,
            frame: f,
            frames,
            now_ns: boundary,
            recorded: trace.recorded,
            dropped: trace.dropped,
            names: &trace.names,
        };
        rendered.push(render_frame(&tele, &episodes, &info, opts));
    }
    online.finish();
    ReplayOutcome {
        frames: rendered,
        telemetry: tele,
        episodes: online.episodes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{AttrCtx, Device, Event, TimedEvent};

    fn trace_with_pingpong() -> EventTrace {
        let base = 0x10000u64;
        let mut events = vec![TimedEvent {
            t_ns: 0.0,
            cost_ns: 0.0,
            ctx: AttrCtx::host(),
            event: Event::Alloc {
                base,
                bytes: 1 << 20,
                kind: hetsim::AllocKind::Managed,
            },
        }];
        let mut dir = Device::GPU0;
        for i in 0..8u64 {
            events.push(TimedEvent {
                t_ns: 10_000.0 * (i + 1) as f64,
                cost_ns: 30_000.0,
                ctx: AttrCtx {
                    alloc: Some(base),
                    ..AttrCtx::host()
                },
                event: Event::Migration {
                    page: 16,
                    to: dir,
                    bytes: 65_536,
                },
            });
            dir = if dir == Device::Cpu {
                Device::GPU0
            } else {
                Device::Cpu
            };
        }
        EventTrace {
            workload: "synthetic".to_string(),
            platform_name: "intel_pascal".to_string(),
            page_size: 65_536,
            link_bw: 12.0,
            elapsed_ns: 90_000.0,
            recorded: events.len() as u64,
            dropped: 0,
            names: vec![(base, "data".to_string())],
            events,
        }
    }

    #[test]
    fn replay_is_byte_deterministic() {
        let trace = trace_with_pingpong();
        let opts = DashOpts {
            ascii: true,
            ..DashOpts::default()
        };
        let run = || {
            replay(
                &trace,
                TelemetryConfig::default(),
                OnlineConfig::default(),
                3,
                &opts,
            )
            .frames
            .join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_detects_the_ping_pong_episode_and_names_the_alloc() {
        let trace = trace_with_pingpong();
        let out = replay(
            &trace,
            TelemetryConfig::default(),
            OnlineConfig::default(),
            2,
            &DashOpts {
                ascii: true,
                ..DashOpts::default()
            },
        );
        assert_eq!(out.episodes.len(), 1);
        let e = &out.episodes[0];
        assert!(e.span_ns() > 0.0);
        assert!(e.cost_ns > 0.0);
        let last = out.frames.last().unwrap();
        assert!(last.contains("ping-pong"), "episode line missing:\n{last}");
        assert!(last.contains("data"), "alloc display name missing:\n{last}");
        assert!(last.is_ascii(), "ascii mode must emit pure ASCII");
    }

    #[test]
    fn empty_trace_renders_placeholders() {
        let trace = EventTrace {
            workload: "empty".to_string(),
            platform_name: "intel_volta".to_string(),
            page_size: 65_536,
            link_bw: 12.0,
            elapsed_ns: 0.0,
            recorded: 0,
            dropped: 0,
            names: Vec::new(),
            events: Vec::new(),
        };
        let out = replay(
            &trace,
            TelemetryConfig::default(),
            OnlineConfig::default(),
            1,
            &DashOpts::default(),
        );
        assert_eq!(out.frames.len(), 1);
        assert!(out.frames[0].contains("(no allocation activity)"));
        assert!(out.frames[0].contains("(none detected)"));
    }

    #[test]
    fn sparkline_fold_conserves_sums() {
        let buckets: Vec<Sample> = (0..100)
            .map(|i| Sample {
                faults: i,
                ..Sample::default()
            })
            .collect();
        let folded = fold(&buckets, 16, |s| s.faults);
        assert!(folded.len() <= 16);
        assert_eq!(folded.iter().sum::<u64>(), (0..100).sum::<u64>());
    }
}
