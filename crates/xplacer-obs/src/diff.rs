//! Differential trace analysis: align two runs (event traces or profile
//! reports) by stable keys and report what changed.
//!
//! The alignment keys survive placement changes: kernels align by name
//! (with launch counts compared, so a change in launch count is a
//! *changed* row, not a mis-pair), allocations by display label when the
//! allocation site is named (base addresses shift when allocation order
//! changes) with the hex base as fallback, and (kernel × allocation)
//! cells by the pair. Each aligned row carries absolute and relative
//! deltas on its primary time metric plus the counters that explain it
//! (faults, migrations, bytes moved), and a per-row verdict against the
//! same threshold as the run verdict.
//!
//! Inputs are checked by schema tag: two `xplacer-events/1` documents or
//! two `xplacer-profile/1` documents diff cleanly; anything else — or a
//! mixed pair — is refused by name rather than producing nonsense.

use std::collections::BTreeMap;

use crate::events::{events_from_json, EVENTS_SCHEMA};
use crate::json::Json;
use crate::profile::{ProfileReport, PROFILE_SCHEMA};

/// Schema tag of the diff JSON document.
pub const DIFF_SCHEMA: &str = "xplacer-diff/1";

/// Default relative-change threshold separating neutral from
/// improved/regressed (2%).
pub const DEFAULT_THRESHOLD: f64 = 0.02;

/// Comparison verdict for a row or a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Improved,
    Regressed,
    Neutral,
}

impl Verdict {
    /// Classify a time delta: relative change beyond `threshold` of the
    /// baseline decides; a row appearing from nothing is a regression,
    /// one vanishing an improvement (subject to the absolute floor the
    /// caller's threshold implies on a zero baseline).
    fn of(a_ns: f64, b_ns: f64, threshold: f64) -> Verdict {
        let delta = b_ns - a_ns;
        if a_ns == 0.0 && b_ns == 0.0 {
            return Verdict::Neutral;
        }
        if a_ns == 0.0 {
            return Verdict::Regressed;
        }
        let rel = delta / a_ns;
        if rel > threshold {
            Verdict::Regressed
        } else if rel < -threshold {
            Verdict::Improved
        } else {
            Verdict::Neutral
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Neutral => "neutral",
        }
    }
}

/// The comparable metrics of one aligned row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RowMetrics {
    /// Primary time metric: total span time for kernels, attributed cost
    /// for allocations and cells.
    pub ns: f64,
    pub faults: u64,
    pub migrations: u64,
    pub bytes_moved: u64,
    /// Kernel launches (0 for allocation rows).
    pub launches: u64,
}

impl RowMetrics {
    fn is_same(&self, o: &RowMetrics) -> bool {
        self == o
    }
}

/// A digest of one run: everything the diff aligns on, extracted from
/// either an events document or a profile document.
#[derive(Debug, Clone)]
pub struct RunDigest {
    /// Where the digest came from (a path, for rendering).
    pub source: String,
    /// Schema tag of the input document.
    pub schema: String,
    pub workload: String,
    pub platform: String,
    pub elapsed_ns: f64,
    /// Kernel rows by name (includes the `<host>` pseudo-kernel).
    pub kernels: BTreeMap<String, RowMetrics>,
    /// Allocation rows by display label (named label, or hex base).
    pub allocs: BTreeMap<String, RowMetrics>,
    /// (kernel × allocation) cells by `"kernel|label"`.
    pub cells: BTreeMap<String, RowMetrics>,
}

fn digest_of_profile(p: &ProfileReport, source: &str, schema: &str) -> RunDigest {
    let mut kernels = BTreeMap::new();
    for k in &p.kernels {
        kernels.insert(
            k.name.clone(),
            RowMetrics {
                ns: k.total_ns,
                faults: k.costs.faults,
                migrations: k.costs.migrations,
                bytes_moved: k.costs.bytes_moved(),
                launches: k.launches,
            },
        );
    }
    let mut allocs = BTreeMap::new();
    for a in &p.allocs {
        allocs.insert(
            a.label.clone(),
            RowMetrics {
                ns: a.costs.cost_ns,
                faults: a.costs.faults,
                migrations: a.costs.migrations,
                bytes_moved: a.costs.bytes_moved(),
                launches: 0,
            },
        );
    }
    let mut cells = BTreeMap::new();
    for c in &p.cells {
        cells.insert(
            format!("{}|{}", c.kernel, c.label),
            RowMetrics {
                ns: c.costs.cost_ns,
                faults: c.costs.faults,
                migrations: c.costs.migrations,
                bytes_moved: c.costs.bytes_moved(),
                launches: 0,
            },
        );
    }
    RunDigest {
        source: source.to_string(),
        schema: schema.to_string(),
        workload: p.workload.clone(),
        platform: p.platform.clone(),
        elapsed_ns: p.elapsed_ns,
        kernels,
        allocs,
        cells,
    }
}

impl RunDigest {
    /// Digest an in-memory profile report directly, without a JSON
    /// round-trip — the evidence column of the optimizer's report.
    pub fn from_profile(p: &ProfileReport, source: &str) -> RunDigest {
        digest_of_profile(p, source, PROFILE_SCHEMA)
    }

    /// Digest a parsed JSON document, dispatching on its `schema` field.
    /// Events documents are folded through [`ProfileReport::from_trace`];
    /// profile documents are read directly. Unknown or missing schemas
    /// are refused by name.
    pub fn from_json(doc: &Json, source: &str) -> Result<RunDigest, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(EVENTS_SCHEMA) => {
                let trace = events_from_json(doc)?;
                let p = ProfileReport::from_trace(&trace);
                Ok(digest_of_profile(&p, source, EVENTS_SCHEMA))
            }
            Some(PROFILE_SCHEMA) => Self::from_profile_json(doc, source),
            Some(other) => Err(format!(
                "{source}: cannot diff `{other}` documents (expected {EVENTS_SCHEMA} or {PROFILE_SCHEMA})"
            )),
            None => Err(format!("{source}: document has no `schema` field")),
        }
    }

    /// Read the digest rows out of an `xplacer-profile/1` document.
    fn from_profile_json(doc: &Json, source: &str) -> Result<RunDigest, String> {
        let text = |j: &Json, k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{source}: missing `{k}`"))
        };
        let costs_metrics = |j: &Json| -> RowMetrics {
            let c = j.get("costs");
            let num = |k: &str| {
                c.and_then(|c| c.get(k))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            let cnt = |k: &str| c.and_then(|c| c.get(k)).and_then(Json::as_u64).unwrap_or(0);
            RowMetrics {
                ns: num("cost_ns"),
                faults: cnt("faults"),
                migrations: cnt("migrations"),
                bytes_moved: cnt("bytes_migrated") + cnt("memcpy_bytes"),
                launches: 0,
            }
        };
        let mut kernels = BTreeMap::new();
        for k in doc.get("kernels").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut m = costs_metrics(k);
            m.ns = k.get("total_ns").and_then(Json::as_f64).unwrap_or(m.ns);
            m.launches = k.get("launches").and_then(Json::as_u64).unwrap_or(0);
            kernels.insert(text(k, "name")?, m);
        }
        let mut allocs = BTreeMap::new();
        for a in doc.get("hot_allocs").and_then(Json::as_arr).unwrap_or(&[]) {
            allocs.insert(text(a, "label")?, costs_metrics(a));
        }
        let mut cells = BTreeMap::new();
        for c in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
            let key = format!("{}|{}", text(c, "kernel")?, text(c, "alloc")?);
            cells.insert(key, costs_metrics(c));
        }
        Ok(RunDigest {
            source: source.to_string(),
            schema: PROFILE_SCHEMA.to_string(),
            workload: text(doc, "workload")?,
            platform: text(doc, "platform")?,
            elapsed_ns: doc.get("elapsed_ns").and_then(Json::as_f64).unwrap_or(0.0),
            kernels,
            allocs,
            cells,
        })
    }
}

/// One aligned row of the diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Section: `"kernel"`, `"alloc"`, or `"cell"`.
    pub section: &'static str,
    /// Alignment key within the section.
    pub key: String,
    /// `None` on the side the row is absent from.
    pub a: Option<RowMetrics>,
    pub b: Option<RowMetrics>,
    pub verdict: Verdict,
}

impl DiffRow {
    pub fn a_ns(&self) -> f64 {
        self.a.map(|m| m.ns).unwrap_or(0.0)
    }
    pub fn b_ns(&self) -> f64 {
        self.b.map(|m| m.ns).unwrap_or(0.0)
    }
    pub fn delta_ns(&self) -> f64 {
        self.b_ns() - self.a_ns()
    }
    pub fn status(&self) -> &'static str {
        match (&self.a, &self.b) {
            (None, Some(_)) => "added",
            (Some(_), None) => "removed",
            _ => "changed",
        }
    }
}

/// The full comparison of two runs.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    pub a: RunDigest,
    pub b: RunDigest,
    pub threshold: f64,
    /// Run-level verdict, decided by elapsed time.
    pub verdict: Verdict,
    /// Added/removed/changed rows across all sections (rows whose metrics
    /// are identical on both sides are counted in `unchanged`, not
    /// listed).
    pub rows: Vec<DiffRow>,
    pub unchanged: usize,
}

fn align(
    section: &'static str,
    a: &BTreeMap<String, RowMetrics>,
    b: &BTreeMap<String, RowMetrics>,
    threshold: f64,
    rows: &mut Vec<DiffRow>,
    unchanged: &mut usize,
) {
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for k in keys {
        let (ma, mb) = (a.get(k).copied(), b.get(k).copied());
        if let (Some(x), Some(y)) = (ma, mb) {
            if x.is_same(&y) {
                *unchanged += 1;
                continue;
            }
        }
        let verdict = Verdict::of(
            ma.map(|m| m.ns).unwrap_or(0.0),
            mb.map(|m| m.ns).unwrap_or(0.0),
            threshold,
        );
        rows.push(DiffRow {
            section,
            key: k.clone(),
            a: ma,
            b: mb,
            verdict,
        });
    }
}

/// Compare two digests. Refuses mismatched input schemas (an events trace
/// diffed against a profile report would silently compare different cost
/// definitions).
pub fn diff(a: RunDigest, b: RunDigest, threshold: f64) -> Result<TraceDiff, String> {
    if a.schema != b.schema {
        return Err(format!(
            "refusing to diff mismatched inputs: {} is {} but {} is {}",
            a.source, a.schema, b.source, b.schema
        ));
    }
    let verdict = Verdict::of(a.elapsed_ns, b.elapsed_ns, threshold);
    let mut rows = Vec::new();
    let mut unchanged = 0usize;
    align(
        "kernel",
        &a.kernels,
        &b.kernels,
        threshold,
        &mut rows,
        &mut unchanged,
    );
    align(
        "alloc",
        &a.allocs,
        &b.allocs,
        threshold,
        &mut rows,
        &mut unchanged,
    );
    align(
        "cell",
        &a.cells,
        &b.cells,
        threshold,
        &mut rows,
        &mut unchanged,
    );
    // Biggest movement first; key order breaks ties deterministically.
    rows.sort_by(|x, y| {
        y.delta_ns()
            .abs()
            .total_cmp(&x.delta_ns().abs())
            .then_with(|| x.section.cmp(y.section))
            .then_with(|| x.key.cmp(&y.key))
    });
    Ok(TraceDiff {
        a,
        b,
        threshold,
        verdict,
        rows,
        unchanged,
    })
}

impl TraceDiff {
    /// True when the run-level verdict is a regression — the CI-gate
    /// signal behind `xplacer diff`'s nonzero exit.
    pub fn regressed(&self) -> bool {
        self.verdict == Verdict::Regressed
    }

    /// True when nothing moved at all (self-diff): elapsed equal bit-for-
    /// bit and every aligned row identical.
    pub fn is_zero(&self) -> bool {
        self.rows.is_empty() && self.a.elapsed_ns == self.b.elapsed_ns
    }

    /// Human-readable report; `top` bounds the "what changed" listing.
    pub fn render(&self, top: usize) -> String {
        let ms = |v: f64| v / 1e6;
        let pct = |a: f64, d: f64| {
            if a == 0.0 {
                "   new".to_string()
            } else {
                format!("{:+6.1}%", d / a * 100.0)
            }
        };
        let mut s = String::new();
        s.push_str(&format!(
            "==== xplacer diff: {} -> {} ====\n",
            self.a.source, self.b.source
        ));
        s.push_str(&format!(
            "workload: {} -> {}   platform: {} -> {}\n",
            self.a.workload, self.b.workload, self.a.platform, self.b.platform
        ));
        let d = self.b.elapsed_ns - self.a.elapsed_ns;
        s.push_str(&format!(
            "elapsed: {:.3} ms -> {:.3} ms   delta {:+.3} ms ({})   verdict: {} (threshold {:.1}%)\n",
            ms(self.a.elapsed_ns),
            ms(self.b.elapsed_ns),
            ms(d),
            pct(self.a.elapsed_ns, d).trim_start(),
            self.verdict.as_str(),
            self.threshold * 100.0
        ));
        let (added, removed, changed) = self.counts();
        s.push_str(&format!(
            "rows: {added} added, {removed} removed, {changed} changed, {} unchanged\n",
            self.unchanged
        ));
        if self.rows.is_empty() {
            s.push_str("\nno differences: the runs are identical at every aligned row.\n");
            return s;
        }
        s.push_str(&format!(
            "\ntop {} changes by |delta|:\n",
            top.min(self.rows.len())
        ));
        s.push_str(&format!(
            "  {:<7} {:<8} {:<34} {:>11} {:>11} {:>11} {:>8} {:>10}\n",
            "section", "status", "key", "a ms", "b ms", "delta ms", "rel", "verdict"
        ));
        for r in self.rows.iter().take(top) {
            s.push_str(&format!(
                "  {:<7} {:<8} {:<34} {:>11.3} {:>11.3} {:>+11.3} {:>8} {:>10}\n",
                r.section,
                r.status(),
                r.key,
                ms(r.a_ns()),
                ms(r.b_ns()),
                ms(r.delta_ns()),
                pct(r.a_ns(), r.delta_ns()).trim_start(),
                r.verdict.as_str()
            ));
        }
        if self.rows.len() > top {
            s.push_str(&format!("  ... {} more rows\n", self.rows.len() - top));
        }
        s
    }

    fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.rows {
            match r.status() {
                "added" => c.0 += 1,
                "removed" => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    /// JSON document (schema [`DIFF_SCHEMA`]).
    pub fn to_json(&self, top: usize) -> Json {
        fn metrics_json(m: &RowMetrics) -> Json {
            let mut j = Json::obj();
            j.set("ns", Json::Num(m.ns))
                .set("faults", m.faults.into())
                .set("migrations", m.migrations.into())
                .set("bytes_moved", m.bytes_moved.into())
                .set("launches", m.launches.into());
            j
        }
        let side = |d: &RunDigest| {
            let mut j = Json::obj();
            j.set("source", d.source.as_str().into())
                .set("schema", d.schema.as_str().into())
                .set("workload", d.workload.as_str().into())
                .set("platform", d.platform.as_str().into())
                .set("elapsed_ns", Json::Num(d.elapsed_ns));
            j
        };
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut j = Json::obj();
                j.set("section", r.section.into())
                    .set("status", r.status().into())
                    .set("key", r.key.as_str().into());
                if let Some(m) = &r.a {
                    j.set("a", metrics_json(m));
                }
                if let Some(m) = &r.b {
                    j.set("b", metrics_json(m));
                }
                j.set("delta_ns", Json::Num(r.delta_ns()))
                    .set("verdict", r.verdict.as_str().into());
                j
            })
            .collect();
        let (added, removed, changed) = self.counts();
        let mut totals = Json::obj();
        totals
            .set("added", (added as u64).into())
            .set("removed", (removed as u64).into())
            .set("changed", (changed as u64).into())
            .set("unchanged", (self.unchanged as u64).into());
        let top_changes = self
            .rows
            .iter()
            .take(top)
            .map(|r| {
                let mut j = Json::obj();
                j.set("section", r.section.into())
                    .set("key", r.key.as_str().into())
                    .set("delta_ns", Json::Num(r.delta_ns()));
                j
            })
            .collect();
        let mut j = Json::obj();
        j.set("schema", DIFF_SCHEMA.into())
            .set("threshold", Json::Num(self.threshold))
            .set("verdict", self.verdict.as_str().into())
            .set("a", side(&self.a))
            .set("b", side(&self.b))
            .set(
                "elapsed_delta_ns",
                Json::Num(self.b.elapsed_ns - self.a.elapsed_ns),
            )
            .set("totals", totals)
            .set("top_changes", Json::Arr(top_changes))
            .set("rows", Json::Arr(rows));
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(elapsed: f64, kernel_ns: f64) -> RunDigest {
        let mut kernels = BTreeMap::new();
        kernels.insert(
            "k".to_string(),
            RowMetrics {
                ns: kernel_ns,
                faults: 3,
                migrations: 2,
                bytes_moved: 1024,
                launches: 1,
            },
        );
        RunDigest {
            source: "x.json".into(),
            schema: EVENTS_SCHEMA.into(),
            workload: "w".into(),
            platform: "p".into(),
            elapsed_ns: elapsed,
            kernels,
            allocs: BTreeMap::new(),
            cells: BTreeMap::new(),
        }
    }

    #[test]
    fn self_diff_is_zero_and_not_regressed() {
        let d = diff(digest(1000.0, 400.0), digest(1000.0, 400.0), 0.02).unwrap();
        assert!(d.is_zero());
        assert!(!d.regressed());
        assert_eq!(d.unchanged, 1);
        assert!(d.render(5).contains("no differences"));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let d = diff(digest(1000.0, 400.0), digest(1100.0, 500.0), 0.02).unwrap();
        assert!(d.regressed());
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].status(), "changed");
        assert_eq!(d.rows[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn speedup_beyond_threshold_improves() {
        let d = diff(digest(1000.0, 400.0), digest(900.0, 300.0), 0.02).unwrap();
        assert_eq!(d.verdict, Verdict::Improved);
        assert!(!d.regressed());
    }

    #[test]
    fn small_drift_within_threshold_is_neutral() {
        let d = diff(digest(1000.0, 400.0), digest(1010.0, 400.0), 0.02).unwrap();
        assert_eq!(d.verdict, Verdict::Neutral);
    }

    #[test]
    fn added_and_removed_rows_are_reported() {
        let mut b = digest(1000.0, 400.0);
        b.kernels.remove("k");
        b.kernels.insert(
            "k2".to_string(),
            RowMetrics {
                ns: 400.0,
                ..RowMetrics::default()
            },
        );
        let d = diff(digest(1000.0, 400.0), b, 0.02).unwrap();
        let (added, removed, _) = d.counts();
        assert_eq!((added, removed), (1, 1));
        let add = d.rows.iter().find(|r| r.status() == "added").unwrap();
        assert_eq!(add.key, "k2");
        assert_eq!(add.verdict, Verdict::Regressed, "new cost is a regression");
    }

    #[test]
    fn mismatched_schemas_are_refused() {
        let mut b = digest(1000.0, 400.0);
        b.schema = PROFILE_SCHEMA.into();
        let err = diff(digest(1000.0, 400.0), b, 0.02).unwrap_err();
        assert!(err.contains("mismatched"), "{err}");
    }

    #[test]
    fn unknown_schema_documents_are_refused_by_name() {
        let mut j = Json::obj();
        j.set("schema", "xplacer-metrics/2".into());
        let err = RunDigest::from_json(&j, "m.json").unwrap_err();
        assert!(err.contains("xplacer-metrics/2"), "{err}");
    }
}
