//! Full event-stream export: the attributed [`TimedEvent`] sequence as a
//! self-describing JSON document, and the parser that reads it back.
//!
//! Where [`crate::metrics`] digests the stream (per-kind counts), this
//! module preserves it: every retained event with its timestamp, cost, and
//! attribution context, plus enough platform metadata (page size, link
//! bandwidth) to re-derive time-series and episodes offline. It is the
//! interchange format behind `xplacer top --replay` — record once, replay
//! the dashboard any number of times, deterministically.
//!
//! Timestamps are `f64` simulated ns serialized shortest-roundtrip, so a
//! parsed trace is bit-identical to the recorded one.

use hetsim::{
    AllocKind, AttrCtx, CopyKind, Device, Event, EventLog, MemAdvise, Platform, StreamId,
    TimedEvent,
};
use xplacer_core::AllocSummary;

use crate::json::Json;

/// Schema tag of the document this module writes.
pub const EVENTS_SCHEMA: &str = "xplacer-events/1";

fn hex(addr: u64) -> Json {
    format!("0x{addr:x}").into()
}

fn parse_hex(j: &Json) -> Option<u64> {
    let s = j.as_str()?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn device_str(d: Device) -> Json {
    d.to_string().into()
}

fn parse_device(s: &str) -> Option<Device> {
    if s == "cpu" {
        return Some(Device::Cpu);
    }
    s.strip_prefix("gpu")?.parse::<u8>().ok().map(Device::Gpu)
}

fn alloc_kind_str(k: AllocKind) -> String {
    match k {
        AllocKind::Managed => "managed".to_string(),
        AllocKind::Device(g) => format!("device{g}"),
        AllocKind::Host => "host".to_string(),
    }
}

fn parse_alloc_kind(s: &str) -> Option<AllocKind> {
    match s {
        "managed" => Some(AllocKind::Managed),
        "host" => Some(AllocKind::Host),
        _ => s
            .strip_prefix("device")?
            .parse::<u8>()
            .ok()
            .map(AllocKind::Device),
    }
}

fn copy_kind_str(k: CopyKind) -> &'static str {
    match k {
        CopyKind::HostToDevice => "h2d",
        CopyKind::DeviceToHost => "d2h",
        CopyKind::DeviceToDevice => "d2d",
        CopyKind::HostToHost => "h2h",
    }
}

fn parse_copy_kind(s: &str) -> Option<CopyKind> {
    match s {
        "h2d" => Some(CopyKind::HostToDevice),
        "d2h" => Some(CopyKind::DeviceToHost),
        "d2d" => Some(CopyKind::DeviceToDevice),
        "h2h" => Some(CopyKind::HostToHost),
        _ => None,
    }
}

fn advice_str(a: MemAdvise) -> String {
    match a {
        MemAdvise::SetReadMostly => "set_read_mostly".to_string(),
        MemAdvise::UnsetReadMostly => "unset_read_mostly".to_string(),
        MemAdvise::SetPreferredLocation(d) => format!("set_preferred_location:{d}"),
        MemAdvise::UnsetPreferredLocation => "unset_preferred_location".to_string(),
        MemAdvise::SetAccessedBy(d) => format!("set_accessed_by:{d}"),
        MemAdvise::UnsetAccessedBy(d) => format!("unset_accessed_by:{d}"),
    }
}

fn parse_advice(s: &str) -> Option<MemAdvise> {
    match s {
        "set_read_mostly" => return Some(MemAdvise::SetReadMostly),
        "unset_read_mostly" => return Some(MemAdvise::UnsetReadMostly),
        "unset_preferred_location" => return Some(MemAdvise::UnsetPreferredLocation),
        _ => {}
    }
    let (verb, dev) = s.split_once(':')?;
    let d = parse_device(dev)?;
    match verb {
        "set_preferred_location" => Some(MemAdvise::SetPreferredLocation(d)),
        "set_accessed_by" => Some(MemAdvise::SetAccessedBy(d)),
        "unset_accessed_by" => Some(MemAdvise::UnsetAccessedBy(d)),
        _ => None,
    }
}

fn event_body(out: &mut Json, ev: &Event) {
    match ev {
        Event::Alloc { base, bytes, kind } => {
            out.set("base", hex(*base))
                .set("bytes", (*bytes).into())
                .set("mem", alloc_kind_str(*kind).into());
        }
        Event::Free { base } => {
            out.set("base", hex(*base));
        }
        Event::PageFault { dev, page, write } => {
            out.set("dev", device_str(*dev))
                .set("page", (*page).into())
                .set("write", (*write).into());
        }
        Event::Migration { page, to, bytes } | Event::ReadDup { page, to, bytes } => {
            out.set("page", (*page).into())
                .set("to", device_str(*to))
                .set("bytes", (*bytes).into());
        }
        Event::Invalidate { page, copies } => {
            out.set("page", (*page).into())
                .set("copies", u64::from(*copies).into());
        }
        Event::Evict {
            pages,
            bytes,
            writeback_pages,
            writeback_bytes,
        } => {
            out.set("pages", u64::from(*pages).into())
                .set("bytes", (*bytes).into())
                .set("writeback_pages", u64::from(*writeback_pages).into())
                .set("writeback_bytes", (*writeback_bytes).into());
        }
        Event::Memcpy {
            dst,
            src,
            bytes,
            kind,
            stream,
            start_ns,
            end_ns,
        } => {
            out.set("dst", hex(*dst))
                .set("src", hex(*src))
                .set("bytes", (*bytes).into())
                .set("copy", copy_kind_str(*kind).into())
                .set("stream", stream.0.into())
                .set("start", Json::Num(*start_ns))
                .set("end", Json::Num(*end_ns));
        }
        Event::Advise {
            addr,
            bytes,
            advice,
        } => {
            out.set("addr", hex(*addr))
                .set("bytes", (*bytes).into())
                .set("advice", advice_str(*advice).into());
        }
        Event::Prefetch {
            addr,
            bytes,
            pages,
            bytes_moved,
            to,
            stream,
            start_ns,
            end_ns,
        } => {
            out.set("addr", hex(*addr))
                .set("bytes", (*bytes).into())
                .set("pages", u64::from(*pages).into())
                .set("bytes_moved", (*bytes_moved).into())
                .set("to", device_str(*to))
                .set("stream", stream.0.into())
                .set("start", Json::Num(*start_ns))
                .set("end", Json::Num(*end_ns));
        }
        Event::KernelBegin { name } => {
            out.set("name", name.as_str().into());
        }
        Event::KernelEnd {
            name,
            stream,
            start_ns,
            end_ns,
        } => {
            out.set("name", name.as_str().into())
                .set("stream", stream.0.into())
                .set("start", Json::Num(*start_ns))
                .set("end", Json::Num(*end_ns));
        }
    }
}

fn event_json(ev: &TimedEvent) -> Json {
    let mut j = Json::obj();
    j.set("t", Json::Num(ev.t_ns))
        .set("cost", Json::Num(ev.cost_ns))
        .set("kind", ev.event.kind_name().into());
    if let Some(k) = ev.ctx.kernel_name() {
        j.set("kernel", k.into())
            .set("seq", ev.ctx.launch_seq.into());
    }
    if ev.ctx.stream.0 != 0 {
        j.set("ctx_stream", ev.ctx.stream.0.into());
    }
    if let Some(a) = ev.ctx.alloc {
        j.set("alloc", hex(a));
    }
    event_body(&mut j, &ev.event);
    j
}

/// Serialize the retained event stream plus the platform facts replay
/// needs. `allocs` supplies the display names shown by the dashboard.
pub fn events_json(
    log: &EventLog,
    workload: &str,
    elapsed_ns: f64,
    platform: &Platform,
    allocs: &[AllocSummary],
) -> Json {
    let mut pf = Json::obj();
    pf.set("name", platform.name.into())
        .set("page_size", platform.page_size.into())
        .set("link_bw", Json::Num(platform.link_bw));
    let names = allocs
        .iter()
        .map(|a| {
            let mut j = Json::obj();
            j.set("base", hex(a.base))
                .set("name", a.name.as_str().into());
            j
        })
        .collect();
    let mut j = Json::obj();
    j.set("schema", EVENTS_SCHEMA.into())
        .set("workload", workload.into())
        .set("elapsed_ns", Json::Num(elapsed_ns))
        .set("platform", pf)
        .set("recorded", log.total_recorded().into())
        .set("dropped", log.dropped().into())
        .set("allocs", Json::Arr(names))
        .set("events", Json::Arr(log.events().map(event_json).collect()));
    j
}

/// A parsed events document: everything `xplacer top --replay` needs.
#[derive(Debug, Clone)]
pub struct EventTrace {
    pub workload: String,
    pub platform_name: String,
    pub page_size: u64,
    /// Interconnect bandwidth in bytes/ns (the model peak for utilization).
    pub link_bw: f64,
    pub elapsed_ns: f64,
    /// Events recorded over the run (including ones the ring dropped).
    pub recorded: u64,
    pub dropped: u64,
    /// Allocation display names, by base address.
    pub names: Vec<(u64, String)>,
    pub events: Vec<TimedEvent>,
}

impl EventTrace {
    /// Parse a serialized events document, validating stream-order
    /// monotonicity ([`validate_stream_order`]). This is the canonical
    /// text → trace entry point for `--replay`, `diff`, and `blame`.
    pub fn parse(text: &str) -> Result<EventTrace, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        events_from_json(&doc)
    }

    /// Package a live recording as the same trace `--replay` would parse
    /// from disk: the machine's platform facts plus the retained stream.
    pub fn from_recording(
        workload: &str,
        platform: &Platform,
        elapsed_ns: f64,
        log: &EventLog,
        names: Vec<(u64, String)>,
    ) -> EventTrace {
        EventTrace {
            workload: workload.to_string(),
            platform_name: platform.name.to_string(),
            page_size: platform.page_size,
            link_bw: platform.link_bw,
            elapsed_ns,
            recorded: log.total_recorded(),
            dropped: log.dropped(),
            names,
            events: log.events().cloned().collect(),
        }
    }
}

/// Reject event sequences whose simulated timestamps run backwards within
/// a stream (or carry non-finite/negative stamps or inverted spans).
///
/// The simulator never produces such a stream — each stream's stamps are
/// non-decreasing by construction — so a violation means the document was
/// hand-edited, truncated, or spliced from two runs. Catching it here
/// gives a spanned `event N` error instead of confusing replay output
/// (buckets silently swallowing out-of-order events) or a bogus blame DAG.
pub fn validate_stream_order(events: &[TimedEvent]) -> Result<(), String> {
    let mut last: std::collections::BTreeMap<usize, (f64, usize)> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let kind = ev.event.kind_name();
        if !ev.t_ns.is_finite() || ev.t_ns < 0.0 {
            return Err(format!(
                "event {i} (kind `{kind}`): invalid timestamp {} ns",
                ev.t_ns
            ));
        }
        if let Some((s, e)) = ev.event.span() {
            if !s.is_finite() || !e.is_finite() || e < s {
                return Err(format!(
                    "event {i} (kind `{kind}`): inverted span [{s}, {e}] ns"
                ));
            }
        }
        let stream = ev.effective_stream().0;
        if let Some(&(prev_t, prev_i)) = last.get(&stream) {
            if ev.t_ns < prev_t {
                return Err(format!(
                    "event {i} (kind `{kind}`, stream {stream}): timestamp {} ns goes \
                     backwards past event {prev_i} at {prev_t} ns",
                    ev.t_ns
                ));
            }
        }
        last.insert(stream, (ev.t_ns, i));
    }
    Ok(())
}

fn parse_event(j: &Json) -> Result<TimedEvent, String> {
    let field = |k: &str| j.get(k).ok_or_else(|| format!("missing field `{k}`"));
    let num = |k: &str| field(k).and_then(|v| v.as_f64().ok_or(format!("`{k}` not a number")));
    let uint = |k: &str| field(k).and_then(|v| v.as_u64().ok_or(format!("`{k}` not a u64")));
    let text = |k: &str| field(k).and_then(|v| v.as_str().ok_or(format!("`{k}` not a string")));
    let addr = |k: &str| field(k).and_then(|v| parse_hex(v).ok_or(format!("`{k}` not hex")));
    let dev = |k: &str| text(k).and_then(|s| parse_device(s).ok_or(format!("bad device `{s}`")));
    let stream = || Ok::<_, String>(StreamId(uint("stream")? as usize));

    let kind = text("kind")?;
    let event = match kind {
        "alloc" => Event::Alloc {
            base: addr("base")?,
            bytes: uint("bytes")?,
            kind: text("mem")
                .and_then(|s| parse_alloc_kind(s).ok_or(format!("bad alloc kind `{s}`")))?,
        },
        "free" => Event::Free {
            base: addr("base")?,
        },
        "page_fault" => Event::PageFault {
            dev: dev("dev")?,
            page: uint("page")?,
            write: field("write")?.as_bool().ok_or("`write` not a bool")?,
        },
        "migration" => Event::Migration {
            page: uint("page")?,
            to: dev("to")?,
            bytes: uint("bytes")?,
        },
        "read_dup" => Event::ReadDup {
            page: uint("page")?,
            to: dev("to")?,
            bytes: uint("bytes")?,
        },
        "invalidate" => Event::Invalidate {
            page: uint("page")?,
            copies: uint("copies")? as u32,
        },
        "evict" => Event::Evict {
            pages: uint("pages")? as u32,
            bytes: uint("bytes")?,
            writeback_pages: uint("writeback_pages")? as u32,
            writeback_bytes: uint("writeback_bytes")?,
        },
        "memcpy" => Event::Memcpy {
            dst: addr("dst")?,
            src: addr("src")?,
            bytes: uint("bytes")?,
            kind: text("copy")
                .and_then(|s| parse_copy_kind(s).ok_or(format!("bad copy kind `{s}`")))?,
            stream: stream()?,
            start_ns: num("start")?,
            end_ns: num("end")?,
        },
        "advise" => Event::Advise {
            addr: addr("addr")?,
            bytes: uint("bytes")?,
            advice: text("advice")
                .and_then(|s| parse_advice(s).ok_or(format!("bad advice `{s}`")))?,
        },
        "prefetch" => Event::Prefetch {
            addr: addr("addr")?,
            bytes: uint("bytes")?,
            pages: uint("pages")? as u32,
            bytes_moved: uint("bytes_moved")?,
            to: dev("to")?,
            stream: stream()?,
            start_ns: num("start")?,
            end_ns: num("end")?,
        },
        "kernel_begin" => Event::KernelBegin {
            name: text("name")?.to_string(),
        },
        "kernel_end" => Event::KernelEnd {
            name: text("name")?.to_string(),
            stream: stream()?,
            start_ns: num("start")?,
            end_ns: num("end")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };

    let ctx = AttrCtx {
        kernel: j.get("kernel").and_then(Json::as_str).map(Into::into),
        launch_seq: j.get("seq").and_then(Json::as_u64).unwrap_or(0),
        stream: StreamId(j.get("ctx_stream").and_then(Json::as_u64).unwrap_or(0) as usize),
        alloc: j.get("alloc").and_then(parse_hex),
    };
    Ok(TimedEvent {
        t_ns: num("t")?,
        cost_ns: num("cost")?,
        ctx,
        event,
    })
}

/// Parse an [`events_json`] document back into an [`EventTrace`].
pub fn events_from_json(doc: &Json) -> Result<EventTrace, String> {
    if doc.get("schema").and_then(Json::as_str) != Some(EVENTS_SCHEMA) {
        return Err(format!("not an {EVENTS_SCHEMA} document"));
    }
    let pf = doc.get("platform").ok_or("missing `platform`")?;
    let names = doc
        .get("allocs")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|a| {
            Some((
                a.get("base").and_then(parse_hex)?,
                a.get("name")?.as_str()?.to_string(),
            ))
        })
        .collect();
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing `events`")?
        .iter()
        .enumerate()
        .map(|(i, e)| parse_event(e).map_err(|m| format!("event {i}: {m}")))
        .collect::<Result<Vec<_>, _>>()?;
    validate_stream_order(&events)?;
    Ok(EventTrace {
        workload: doc
            .get("workload")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        platform_name: pf
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        page_size: pf.get("page_size").and_then(Json::as_u64).unwrap_or(65_536),
        link_bw: pf
            .get("link_bw")
            .and_then(Json::as_f64)
            .filter(|b| *b > 0.0)
            .unwrap_or(12.0),
        elapsed_ns: doc.get("elapsed_ns").and_then(Json::as_f64).unwrap_or(0.0),
        recorded: doc.get("recorded").and_then(Json::as_u64).unwrap_or(0),
        dropped: doc.get("dropped").and_then(Json::as_u64).unwrap_or(0),
        names,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, MemHook, DEFAULT_STREAM};

    fn sample_events() -> Vec<TimedEvent> {
        let ctx_k = AttrCtx {
            kernel: Some("sweep".into()),
            launch_seq: 3,
            stream: StreamId(2),
            alloc: Some(0x10000),
        };
        vec![
            TimedEvent {
                t_ns: 0.0,
                cost_ns: 100.0,
                ctx: AttrCtx::host(),
                event: Event::Alloc {
                    base: 0x10000,
                    bytes: 1 << 20,
                    kind: AllocKind::Managed,
                },
            },
            TimedEvent {
                t_ns: 125.5,
                cost_ns: 25_000.0,
                ctx: ctx_k.clone(),
                event: Event::PageFault {
                    dev: Device::GPU0,
                    page: 1,
                    write: true,
                },
            },
            TimedEvent {
                t_ns: 125.5,
                cost_ns: 30_000.0,
                ctx: ctx_k,
                event: Event::Migration {
                    page: 1,
                    to: Device::GPU0,
                    bytes: 65_536,
                },
            },
            TimedEvent {
                t_ns: 200.0,
                cost_ns: 0.0,
                ctx: AttrCtx::host(),
                event: Event::Advise {
                    addr: 0x10000,
                    bytes: 4096,
                    advice: MemAdvise::SetAccessedBy(Device::GPU0),
                },
            },
            TimedEvent {
                t_ns: 300.25,
                cost_ns: 50.0,
                ctx: AttrCtx::host(),
                event: Event::Memcpy {
                    dst: 0x20000,
                    src: 0x10000,
                    bytes: 4096,
                    kind: CopyKind::HostToDevice,
                    stream: DEFAULT_STREAM,
                    start_ns: 250.25,
                    end_ns: 300.25,
                },
            },
            TimedEvent {
                t_ns: 400.0,
                cost_ns: 10.0,
                ctx: AttrCtx::host(),
                event: Event::Evict {
                    pages: 4,
                    bytes: 262_144,
                    writeback_pages: 2,
                    writeback_bytes: 131_072,
                },
            },
            TimedEvent {
                t_ns: 500.0,
                cost_ns: 80.0,
                ctx: AttrCtx::host(),
                event: Event::KernelEnd {
                    name: "sweep".to_string(),
                    stream: StreamId(2),
                    start_ns: 420.0,
                    end_ns: 500.0,
                },
            },
        ]
    }

    #[test]
    fn stream_roundtrips_bit_exactly() {
        let mut log = EventLog::new();
        for ev in sample_events() {
            MemHook::on_event(&mut log, &ev);
        }
        let doc = events_json(&log, "demo", 1234.5, &platform::intel_pascal(), &[]);
        let text = doc.to_string_pretty();
        let trace = events_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(trace.workload, "demo");
        assert_eq!(trace.platform_name, "Intel+Pascal");
        assert_eq!(trace.elapsed_ns, 1234.5);
        assert_eq!(trace.recorded, 7);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events, sample_events());
    }

    #[test]
    fn serialization_is_deterministic() {
        let mut log = EventLog::new();
        for ev in sample_events() {
            MemHook::on_event(&mut log, &ev);
        }
        let a = events_json(&log, "demo", 0.0, &platform::intel_volta(), &[]).to_string_pretty();
        let b = events_json(&log, "demo", 0.0, &platform::intel_volta(), &[]).to_string_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn advice_strings_roundtrip() {
        for a in [
            MemAdvise::SetReadMostly,
            MemAdvise::UnsetReadMostly,
            MemAdvise::SetPreferredLocation(Device::Cpu),
            MemAdvise::UnsetPreferredLocation,
            MemAdvise::SetAccessedBy(Device::Gpu(1)),
            MemAdvise::UnsetAccessedBy(Device::GPU0),
        ] {
            assert_eq!(parse_advice(&advice_str(a)), Some(a));
        }
        assert!(parse_advice("set_frobnication").is_none());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut j = Json::obj();
        j.set("schema", "xplacer-metrics/2".into());
        assert!(events_from_json(&j).is_err());
    }

    #[test]
    fn backwards_timestamps_within_a_stream_are_rejected_with_a_span() {
        let mut log = EventLog::new();
        for mut ev in sample_events() {
            // Rewind the advise stamp behind the alloc on the same stream.
            if ev.event.kind_name() == "advise" {
                ev.t_ns = -0.5;
            }
            MemHook::on_event(&mut log, &ev);
        }
        let doc = events_json(&log, "demo", 1234.5, &platform::intel_pascal(), &[]);
        let err = EventTrace::parse(&doc.to_string_pretty()).unwrap_err();
        assert!(
            err.contains("event 3") && err.contains("advise"),
            "error must name the offending event: {err}"
        );

        // Backwards relative to an earlier event (not just negative).
        let mut log = EventLog::new();
        for mut ev in sample_events() {
            if ev.event.kind_name() == "evict" {
                ev.t_ns = 250.0; // memcpy on the same stream stamped 300.25
            }
            MemHook::on_event(&mut log, &ev);
        }
        let doc = events_json(&log, "demo", 1234.5, &platform::intel_pascal(), &[]);
        let err = EventTrace::parse(&doc.to_string_pretty()).unwrap_err();
        assert!(
            err.contains("event 5") && err.contains("goes") && err.contains("event 4"),
            "error must point at both events: {err}"
        );
    }

    #[test]
    fn distinct_streams_are_ordered_independently() {
        // Stream 2's kernel events interleave with older stream-0 stamps;
        // that is legal (streams progress independently).
        assert!(validate_stream_order(&sample_events()).is_ok());
    }

    #[test]
    fn inverted_spans_are_rejected() {
        let ev = TimedEvent {
            t_ns: 10.0,
            cost_ns: 5.0,
            ctx: AttrCtx::host(),
            event: Event::KernelEnd {
                name: "k".into(),
                stream: DEFAULT_STREAM,
                start_ns: 20.0,
                end_ns: 10.0,
            },
        };
        let err = validate_stream_order(&[ev]).unwrap_err();
        assert!(err.contains("inverted span"), "{err}");
    }
}
