//! Folded-stacks export for flamegraph tooling.
//!
//! Each line is `platform;kernel;alloc;event-kind cost_ns` — the format
//! `flamegraph.pl` / `inferno` consume directly. A kernel's compute
//! remainder (span time not attributed to driver events) is emitted as a
//! three-frame `platform;kernel;compute` leaf so the rendered graph's
//! widths sum to the run's simulated time.

use std::collections::BTreeMap;

use hetsim::{Event, EventLog};

use crate::profile::{ProfileReport, HOST_KERNEL, NO_ALLOC};

/// Fold `log` into flamegraph stacks, using `names` for allocation
/// labels. Lines are aggregated and sorted; the output is deterministic
/// and empty (but valid) for an empty log.
pub fn folded_stacks(platform: &str, log: &EventLog, names: &[(u64, String)]) -> String {
    let label_of = |base: Option<u64>| -> String {
        match base {
            None => NO_ALLOC.to_string(),
            Some(b) => names
                .iter()
                .find(|(nb, _)| *nb == b)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("0x{b:x}")),
        }
    };

    let mut stacks: BTreeMap<String, f64> = BTreeMap::new();
    // Per-kernel span totals and attributed totals, to derive compute.
    let mut span_ns: BTreeMap<String, f64> = BTreeMap::new();
    let mut attributed_ns: BTreeMap<String, f64> = BTreeMap::new();

    for te in log.events() {
        let kernel = te.ctx.kernel_name().unwrap_or(HOST_KERNEL);
        match &te.event {
            Event::KernelBegin { .. } => {}
            Event::KernelEnd { .. } => {
                *span_ns.entry(kernel.to_string()).or_default() += te.cost_ns;
            }
            ev => {
                if te.cost_ns > 0.0 {
                    let frame = format!(
                        "{platform};{kernel};{};{}",
                        label_of(te.ctx.alloc),
                        ev.kind_name()
                    );
                    *stacks.entry(frame).or_default() += te.cost_ns;
                }
                if kernel != HOST_KERNEL {
                    *attributed_ns.entry(kernel.to_string()).or_default() += te.cost_ns;
                }
            }
        }
    }

    for (kernel, span) in &span_ns {
        let compute = span - attributed_ns.get(kernel).copied().unwrap_or(0.0);
        if compute > 0.0 {
            *stacks
                .entry(format!("{platform};{kernel};compute"))
                .or_default() += compute;
        }
    }

    let mut out = String::new();
    for (frame, ns) in &stacks {
        let cost = ns.round() as u64;
        if cost > 0 {
            out.push_str(&format!("{frame} {cost}\n"));
        }
    }
    out
}

/// [`folded_stacks`] driven by an already-built [`ProfileReport`] — used
/// by consumers that have the report but not the raw log. Cells become
/// `platform;kernel;alloc;<bucket>` frames with the report's cost split.
pub fn folded_stacks_from_report(report: &ProfileReport) -> String {
    let mut stacks: BTreeMap<String, f64> = BTreeMap::new();
    for c in &report.cells {
        let base = format!("{};{};{}", report.platform, c.kernel, c.label);
        for (bucket, ns) in [
            ("fault-stall", c.costs.fault_stall_ns),
            ("transfer", c.costs.transfer_ns),
            ("other", c.costs.other_ns),
        ] {
            if ns > 0.0 {
                *stacks.entry(format!("{base};{bucket}")).or_default() += ns;
            }
        }
    }
    for k in &report.kernels {
        if k.name != HOST_KERNEL && k.compute_ns > 0.0 {
            *stacks
                .entry(format!("{};{};compute", report.platform, k.name))
                .or_default() += k.compute_ns;
        }
    }
    let mut out = String::new();
    for (frame, ns) in &stacks {
        let cost = ns.round() as u64;
        if cost > 0 {
            out.push_str(&format!("{frame} {cost}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, EventLog, Machine};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_log() -> EventLog {
        let mut m = Machine::new(platform::intel_pascal());
        let log = Rc::new(RefCell::new(EventLog::with_capacity(1 << 20)));
        m.attach_hook(log.clone());
        let p = m.alloc_managed::<f64>(8192);
        for i in 0..p.len {
            m.st(p, i, 1.0);
        }
        m.launch("touch", p.len, |t, m| {
            let _ = m.ld(p, t);
        });
        m.free(p);
        let log = log.borrow().clone();
        log
    }

    #[test]
    fn folded_lines_are_well_formed_and_sorted() {
        let log = run_log();
        let text = folded_stacks("intel_pascal", &log, &[]);
        assert!(!text.is_empty());
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "deterministic lexicographic order");
        for line in &lines {
            let (frame, cost) = line.rsplit_once(' ').expect("frame cost");
            assert!(cost.parse::<u64>().is_ok(), "integer cost: {line}");
            assert!(
                frame.starts_with("intel_pascal;"),
                "platform root frame: {line}"
            );
        }
        assert!(
            text.contains("intel_pascal;touch;compute"),
            "kernel compute leaf present"
        );
        assert!(text.contains(";page_fault "), "fault frames present");
    }

    #[test]
    fn empty_log_folds_to_empty_output() {
        let log = EventLog::new();
        assert_eq!(folded_stacks("intel_pascal", &log, &[]), "");
    }

    #[test]
    fn names_appear_in_frames() {
        let log = run_log();
        let base = log
            .events()
            .find_map(|e| match e.event {
                Event::Alloc { base, .. } => Some(base),
                _ => None,
            })
            .unwrap();
        let text = folded_stacks("intel_pascal", &log, &[(base, "domain".into())]);
        assert!(text.contains(";domain;"));
    }
}
