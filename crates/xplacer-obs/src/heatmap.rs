//! CUTHERMO-style page×epoch access heatmaps: where in each allocation the
//! program touches memory, and when.
//!
//! [`HeatmapRecorder`] is a [`MemHook`]: attach it to a machine (alongside
//! the tracer via `Machine::add_hook`) and it buckets every heap access by
//! page and by *epoch*, where a new epoch starts at every kernel launch
//! (or an explicit [`mark_phase`](HeatmapRecorder::mark_phase) call). The
//! result renders as terminal ASCII art — pages down, epochs across,
//! brightness = access count — and as CSV for tooling. Hot rows that only
//! light up in alternating columns are the visual signature of the paper's
//! ping-pong anti-pattern.

use std::fmt::Write as _;

use hetsim::{Addr, AllocKind, CopyKind, Device, MemHook};

/// Brightness ramp, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Maximum heatmap rows per allocation; denser allocations get their pages
/// bucketed.
const MAX_ROWS: usize = 32;

struct AllocHeat {
    base: Addr,
    size: u64,
    label: Option<String>,
    live: bool,
    pages: usize,
    /// `counts[epoch][page]` — grown lazily as epochs appear.
    counts: Vec<Vec<u64>>,
}

impl AllocHeat {
    fn display_name(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => format!("0x{:x}", self.base),
        }
    }
}

/// Records page×epoch access counts per allocation. Purely observational:
/// attaching it never changes simulation results or timing.
pub struct HeatmapRecorder {
    page_size: u64,
    epoch: usize,
    allocs: Vec<AllocHeat>,
    /// Index of the last allocation hit, for streaming-access locality.
    last_hit: usize,
}

impl HeatmapRecorder {
    /// `page_size` must match the machine's platform page size so rows
    /// line up with the UM driver's migration granularity.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0);
        HeatmapRecorder {
            page_size,
            epoch: 0,
            allocs: Vec::new(),
            last_hit: 0,
        }
    }

    /// Attach a display label to the allocation at `base` (mirrors the
    /// tracer's diagnostic pragma).
    pub fn name(&mut self, base: Addr, label: &str) {
        if let Some(a) = self.allocs.iter_mut().rev().find(|a| a.base == base) {
            a.label = Some(label.to_string());
        }
    }

    /// Start a new epoch explicitly (phase marker). Kernel launches do
    /// this automatically.
    pub fn mark_phase(&mut self) {
        self.epoch += 1;
    }

    /// The current epoch index.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Number of tracked allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    fn touch(&mut self, addr: Addr, size: u32) {
        // Locality fast path, then linear scan (allocation counts are
        // small in every workload here).
        let idx = if self
            .allocs
            .get(self.last_hit)
            .is_some_and(|a| addr >= a.base && addr < a.base + a.size)
        {
            self.last_hit
        } else {
            match self
                .allocs
                .iter()
                .rposition(|a| addr >= a.base && addr < a.base + a.size)
            {
                Some(i) => i,
                None => return, // untracked address (stack, registers)
            }
        };
        self.last_hit = idx;
        let epoch = self.epoch;
        let a = &mut self.allocs[idx];
        let first = ((addr - a.base) / self.page_size) as usize;
        let last = ((addr - a.base + size.max(1) as u64 - 1) / self.page_size) as usize;
        while a.counts.len() <= epoch {
            a.counts.push(vec![0; a.pages]);
        }
        for p in first..=last.min(a.pages - 1) {
            a.counts[epoch][p] += 1;
        }
    }

    /// Render every allocation's heatmap as terminal ASCII art.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== page x epoch access heatmap ({} allocations, {} epochs, ramp \"{}\") ===",
            self.allocs.len(),
            self.epoch + 1,
            std::str::from_utf8(RAMP).unwrap()
        );
        for a in &self.allocs {
            let epochs = a.counts.len().max(1);
            let bucket = a.pages.div_ceil(MAX_ROWS);
            let rows = a.pages.div_ceil(bucket);
            // Fold pages into row buckets.
            let mut grid = vec![vec![0u64; epochs]; rows];
            for (e, per_page) in a.counts.iter().enumerate() {
                for (p, &c) in per_page.iter().enumerate() {
                    grid[p / bucket][e] += c;
                }
            }
            let max = grid.iter().flatten().copied().max().unwrap_or(0);
            let _ = writeln!(
                out,
                "--- {} ({} B, {} pages{}, {}) ---",
                a.display_name(),
                a.size,
                a.pages,
                if bucket > 1 {
                    format!(", {bucket} pages/row")
                } else {
                    String::new()
                },
                if a.live { "live" } else { "freed" }
            );
            if max == 0 {
                let _ = writeln!(out, "(never accessed)");
                continue;
            }
            let scale = (RAMP.len() - 1) as f64 / (1.0 + max as f64).ln();
            for (r, row) in grid.iter().enumerate() {
                let _ = write!(out, "page {:>6} |", r * bucket);
                for &c in row {
                    let level = if c == 0 {
                        0
                    } else {
                        (((1.0 + c as f64).ln() * scale).round() as usize).clamp(1, RAMP.len() - 1)
                    };
                    out.push(RAMP[level] as char);
                }
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "            +{} (epoch 0..{}, max {} accesses/cell)",
                "-".repeat(epochs),
                epochs - 1,
                max
            );
        }
        out
    }

    /// CSV dump: one row per non-zero (allocation, page, epoch) cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("alloc,base,page,epoch,accesses\n");
        for a in &self.allocs {
            for (e, per_page) in a.counts.iter().enumerate() {
                for (p, &c) in per_page.iter().enumerate() {
                    if c > 0 {
                        let _ =
                            writeln!(out, "{},0x{:x},{},{},{}", a.display_name(), a.base, p, e, c);
                    }
                }
            }
        }
        out
    }

    /// Total accesses recorded for the allocation at `base` (test hook).
    pub fn total_accesses(&self, base: Addr) -> u64 {
        self.allocs
            .iter()
            .filter(|a| a.base == base)
            .flat_map(|a| a.counts.iter().flatten())
            .sum()
    }
}

impl MemHook for HeatmapRecorder {
    fn on_alloc(&mut self, base: Addr, size: u64, _kind: AllocKind) {
        let pages = (size.max(1)).div_ceil(self.page_size) as usize;
        self.allocs.push(AllocHeat {
            base,
            size: size.max(1),
            label: None,
            live: true,
            pages,
            counts: Vec::new(),
        });
    }

    fn on_free(&mut self, base: Addr) {
        if let Some(a) = self
            .allocs
            .iter_mut()
            .rev()
            .find(|a| a.base == base && a.live)
        {
            a.live = false;
        }
    }

    fn on_read(&mut self, _dev: Device, addr: Addr, size: u32) {
        self.touch(addr, size);
    }

    fn on_write(&mut self, _dev: Device, addr: Addr, size: u32) {
        self.touch(addr, size);
    }

    fn on_memcpy(&mut self, _dst: Addr, _src: Addr, _bytes: u64, _kind: CopyKind) {}

    fn on_kernel_launch(&mut self, _name: &str) {
        self.mark_phase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> HeatmapRecorder {
        let mut h = HeatmapRecorder::new(4096);
        h.on_alloc(0x10_0000, 4 * 4096, AllocKind::Managed);
        h.name(0x10_0000, "dom");
        h
    }

    #[test]
    fn accesses_bucket_by_page_and_epoch() {
        let mut h = recorder();
        h.on_write(Device::Cpu, 0x10_0000, 8); // page 0, epoch 0
        h.on_kernel_launch("k");
        h.on_read(Device::GPU0, 0x10_0000 + 4096, 8); // page 1, epoch 1
        h.on_read(Device::GPU0, 0x10_0000 + 4096, 8);
        let csv = h.to_csv();
        assert!(csv.contains("dom,0x100000,0,0,1"));
        assert!(csv.contains("dom,0x100000,1,1,2"));
        assert_eq!(h.total_accesses(0x10_0000), 3);
    }

    #[test]
    fn ascii_render_shows_name_and_ramp() {
        let mut h = recorder();
        for i in 0..100 {
            h.on_write(Device::Cpu, 0x10_0000 + (i % 4) * 4096, 8);
        }
        let art = h.render_ascii();
        assert!(art.contains("dom"));
        assert!(art.contains("page      0 |"));
        assert!(art.contains("max"));
        // Hottest cell uses a bright ramp character.
        assert!(art.contains('@') || art.contains('%') || art.contains('#'));
    }

    #[test]
    fn untouched_allocation_renders_as_such() {
        let h = recorder();
        assert!(h.render_ascii().contains("(never accessed)"));
        assert_eq!(h.to_csv().lines().count(), 1, "header only");
    }

    #[test]
    fn explicit_phase_marker_advances_epoch() {
        let mut h = recorder();
        assert_eq!(h.epoch(), 0);
        h.mark_phase();
        h.on_write(Device::Cpu, 0x10_0000, 8);
        assert!(h.to_csv().contains("dom,0x100000,0,1,1"));
    }

    #[test]
    fn large_allocations_bucket_rows() {
        let mut h = HeatmapRecorder::new(4096);
        let pages = 1000u64;
        h.on_alloc(0x20_0000, pages * 4096, AllocKind::Managed);
        for p in 0..pages {
            h.on_write(Device::Cpu, 0x20_0000 + p * 4096, 8);
        }
        let art = h.render_ascii();
        let rows = art.lines().filter(|l| l.starts_with("page ")).count();
        assert!(rows <= MAX_ROWS, "{rows} rows exceed the cap");
        assert!(art.contains("pages/row"));
    }

    #[test]
    fn unknown_addresses_and_free_are_tolerated() {
        let mut h = recorder();
        h.on_read(Device::Cpu, 0xDEAD_0000, 8); // not an allocation
        h.on_free(0x10_0000);
        h.on_write(Device::Cpu, 0x10_0000, 8); // still recorded after free
        assert!(h.render_ascii().contains("freed"));
        assert_eq!(h.total_accesses(0x10_0000), 1);
    }
}
