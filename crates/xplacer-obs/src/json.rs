//! A tiny JSON document model with a serializer and parser — the shared
//! substrate of every exporter in this crate (no external dependencies are
//! available in the build environment).
//!
//! Objects preserve insertion order, so serialization is fully
//! deterministic: the same document always produces byte-identical output.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (JSON has one number type); object
/// members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`set`](Self::set).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert or replace member `key`. Panics on non-objects (builder
    /// misuse is a programming error).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(members) => {
                if let Some(m) = members.iter_mut().find(|(k, _)| k == key) {
                    m.1 = value;
                } else {
                    members.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a u64 (counters), if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for round-tripping our own
    /// output and validating exporter artifacts in tests).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// JSON has no NaN/inf; clamp them to null-safe 0 and keep integers exact.
fn fmt_number(n: f64) -> String {
    if !n.is_finite() {
        return "0".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        let mut s = format!("{n}");
        // `{}` on f64 is shortest-roundtrip, but may print exponents for
        // extreme magnitudes; those are valid JSON already.
        if s == "-0" {
            s = "0".to_string();
        }
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_compact_output() {
        let mut j = Json::obj();
        j.set("name", "lulesh".into())
            .set("faults", 42u64.into())
            .set("ratio", 0.5.into())
            .set("live", true.into())
            .set("tags", Json::Arr(vec!["a".into(), "b".into()]));
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"lulesh","faults":42,"ratio":0.5,"live":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn set_replaces_existing_key_in_place() {
        let mut j = Json::obj();
        j.set("a", 1u64.into())
            .set("b", 2u64.into())
            .set("a", 3u64.into());
        assert_eq!(j.to_string_compact(), r#"{"a":3,"b":2}"#);
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let mut j = Json::obj();
        j.set("s", "quote \" backslash \\ newline \n tab \t".into())
            .set("neg", Json::Num(-12.25))
            .set("nested", {
                let mut n = Json::obj();
                n.set("empty_arr", Json::Arr(vec![]))
                    .set("empty_obj", Json::obj())
                    .set("null", Json::Null);
                n
            });
        for text in [j.to_string_compact(), j.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j);
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.5).to_string_compact(), "3.5");
        assert_eq!(Json::Num(-7.0).to_string_compact(), "-7");
        assert_eq!(Json::from(u64::MAX).as_f64().unwrap(), u64::MAX as f64);
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "0");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "0");
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n":5,"s":"x","b":false,"a":[1,2]}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,2,]3").is_err());
        assert!(Json::parse("truefalse").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_exponents() {
        let j = Json::parse(" { \"x\" : [ 1e3 , -2.5E-1 ] } ").unwrap();
        let a = j.get("x").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1000.0));
        assert_eq!(a[1].as_f64(), Some(-0.25));
    }

    #[test]
    fn unicode_survives_roundtrip() {
        let j = Json::Str("héllo → wörld \u{1}".to_string());
        let text = j.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }
}
