//! Observability exporters for the XPlacer simulator.
//!
//! This crate turns the structured event stream recorded by
//! [`hetsim::EventLog`] — plus the simulator's [`hetsim::Stats`] and the
//! analysis layer's findings — into analysis-ready artifacts:
//!
//! * [`chrome_trace`] — a Chrome Trace Event Format (`trace.json`) writer
//!   whose output loads in `chrome://tracing` or Perfetto, with kernel and
//!   memcpy spans per stream track and counter tracks for GPU-resident
//!   bytes and cumulative faults/migrations;
//! * [`metrics`] — a machine-readable JSON metrics report serializing the
//!   simulator counters, per-allocation access density, and the
//!   anti-pattern findings;
//! * [`heatmap`] — a CUTHERMO-style page×epoch access heatmap per
//!   allocation (ASCII art for terminals, CSV for tooling);
//! * [`profile`] — a cost-attribution profiler folding the attributed
//!   event stream into nvprof-style per-kernel tables, per-(kernel ×
//!   allocation) cells, and hot-allocation rankings;
//! * [`flamegraph`] — folded-stacks export
//!   (`platform;kernel;alloc;event-kind cost_ns`) for standard flamegraph
//!   renderers.
//!
//! Everything is hand-rolled on purpose: the build environment has no
//! registry access, so the [`json`] module provides the tiny JSON
//! document model the exporters share.

pub mod chrome_trace;
pub mod flamegraph;
pub mod heatmap;
pub mod json;
pub mod metrics;
pub mod profile;

pub use chrome_trace::chrome_trace;
pub use flamegraph::folded_stacks;
pub use heatmap::HeatmapRecorder;
pub use json::Json;
pub use metrics::{metrics_report, stats_json};
pub use profile::ProfileReport;
