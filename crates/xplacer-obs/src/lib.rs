//! Observability exporters for the XPlacer simulator.
//!
//! This crate turns the structured event stream recorded by
//! [`hetsim::EventLog`] — plus the simulator's [`hetsim::Stats`] and the
//! analysis layer's findings — into analysis-ready artifacts:
//!
//! * [`chrome_trace`] — a Chrome Trace Event Format (`trace.json`) writer
//!   whose output loads in `chrome://tracing` or Perfetto, with kernel and
//!   memcpy spans per stream track and counter tracks for GPU-resident
//!   bytes and cumulative faults/migrations;
//! * [`metrics`] — a machine-readable JSON metrics report serializing the
//!   simulator counters, per-allocation access density, and the
//!   anti-pattern findings;
//! * [`heatmap`] — a CUTHERMO-style page×epoch access heatmap per
//!   allocation (ASCII art for terminals, CSV for tooling);
//! * [`profile`] — a cost-attribution profiler folding the attributed
//!   event stream into nvprof-style per-kernel tables, per-(kernel ×
//!   allocation) cells, and hot-allocation rankings;
//! * [`flamegraph`] — folded-stacks export
//!   (`platform;kernel;alloc;event-kind cost_ns`) for standard flamegraph
//!   renderers;
//! * [`events`] — the full attributed event stream as JSON, the interchange
//!   format behind `xplacer top --replay`;
//! * [`timeseries`] — streaming per-allocation telemetry bucketed into
//!   simulated-time epochs with exact-sum hierarchical downsampling;
//! * [`dashboard`] — the `xplacer top` frame renderer (sparklines,
//!   bandwidth gauge, hottest allocations, anti-pattern episodes);
//! * [`crit_path`] — the causal critical-path blame analyzer behind
//!   `xplacer blame`: reconstructs the dependency DAG from the attributed
//!   stream and charges elapsed time to (kernel × allocation × kind) with
//!   bit-exact conservation plus per-allocation what-if bounds;
//! * [`diff`] — differential trace analysis behind `xplacer diff`: aligns
//!   two runs by stable keys and reports added/removed/changed rows with
//!   deltas and an improved/regressed/neutral verdict.
//!
//! Everything is hand-rolled on purpose: the build environment has no
//! registry access, so the [`json`] module provides the tiny JSON
//! document model the exporters share.

pub mod chrome_trace;
pub mod crit_path;
pub mod dashboard;
pub mod diff;
pub mod events;
pub mod flamegraph;
pub mod heatmap;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod timeseries;

pub use chrome_trace::{chrome_trace, chrome_trace_with_series};
pub use crit_path::{BlameReport, BLAME_SCHEMA};
pub use dashboard::{render_frame, replay, DashOpts, FrameInfo, ReplayOutcome};
pub use diff::{diff, RunDigest, TraceDiff, Verdict, DIFF_SCHEMA};
pub use events::{events_from_json, events_json, validate_stream_order, EventTrace};
pub use flamegraph::folded_stacks;
pub use heatmap::HeatmapRecorder;
pub use json::Json;
pub use metrics::{metrics_report, stats_json, METRICS_SCHEMA};
pub use profile::ProfileReport;
pub use timeseries::{timeseries_json, Sample, Telemetry, TelemetryConfig};
