//! Machine-readable JSON metrics report: the simulator's counters, the
//! per-allocation access summaries of the paper's `tracePrint`, the
//! anti-pattern findings, and an event-stream digest, in one document.
//!
//! This is the DINAMITE-style "analysis-ready structured log" counterpart
//! of `Stats::summary()`: the same numbers, but parseable, so downstream
//! tooling (and this repo's own regression tests) can diff runs without
//! scraping text.

use hetsim::{EventLog, Stats};
use xplacer_core::{AllocSummary, Report};

use crate::json::Json;

/// Schema tag of the metrics document. `/2` added the top-level
/// `events_recorded`/`events_dropped` ring-health fields (they shipped
/// unversioned at first; the bump lets `xplacer diff` refuse mismatched
/// inputs by name instead of by missing-field guesswork).
pub const METRICS_SCHEMA: &str = "xplacer-metrics/2";

/// Serialize every [`Stats`] counter plus the derived totals. Field names
/// match the struct fields, so a counter read back from the JSON equals
/// the in-memory value.
pub fn stats_json(s: &Stats) -> Json {
    let mut j = Json::obj();
    j.set("cpu_faults", s.cpu_faults.into())
        .set("gpu_faults", s.gpu_faults.into())
        .set("migrations_h2d", s.migrations_h2d.into())
        .set("migrations_d2h", s.migrations_d2h.into())
        .set("bytes_migrated", s.bytes_migrated.into())
        .set("duplications", s.duplications.into())
        .set("invalidations", s.invalidations.into())
        .set("evictions", s.evictions.into())
        .set("bytes_evicted", s.bytes_evicted.into())
        .set("remote_accesses", s.remote_accesses.into())
        .set("memcpy_h2d", s.memcpy_h2d.into())
        .set("memcpy_d2h", s.memcpy_d2h.into())
        .set("memcpy_bytes", s.memcpy_bytes.into())
        .set("kernel_launches", s.kernel_launches.into())
        .set("cpu_reads", s.cpu_reads.into())
        .set("cpu_writes", s.cpu_writes.into())
        .set("gpu_reads", s.gpu_reads.into())
        .set("gpu_writes", s.gpu_writes.into())
        .set("allocs", s.allocs.into())
        .set("frees", s.frees.into())
        .set("total_faults", s.faults().into())
        .set("total_migrations", s.migrations().into())
        .set("total_accesses", s.accesses().into());
    j
}

/// Read a [`Stats`] back out of [`stats_json`] output (round-trip helper
/// for validation; unknown/missing counters read as 0).
pub fn stats_from_json(j: &Json) -> Stats {
    let g = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    Stats {
        cpu_faults: g("cpu_faults"),
        gpu_faults: g("gpu_faults"),
        migrations_h2d: g("migrations_h2d"),
        migrations_d2h: g("migrations_d2h"),
        bytes_migrated: g("bytes_migrated"),
        duplications: g("duplications"),
        invalidations: g("invalidations"),
        evictions: g("evictions"),
        bytes_evicted: g("bytes_evicted"),
        remote_accesses: g("remote_accesses"),
        memcpy_h2d: g("memcpy_h2d"),
        memcpy_d2h: g("memcpy_d2h"),
        memcpy_bytes: g("memcpy_bytes"),
        kernel_launches: g("kernel_launches"),
        cpu_reads: g("cpu_reads"),
        cpu_writes: g("cpu_writes"),
        gpu_reads: g("gpu_reads"),
        gpu_writes: g("gpu_writes"),
        allocs: g("allocs"),
        frees: g("frees"),
    }
}

/// One allocation's access summary (the Fig. 4 row, structured).
pub fn alloc_summary_json(s: &AllocSummary) -> Json {
    let mut j = Json::obj();
    j.set("name", s.name.as_str().into())
        .set("base", format!("0x{:x}", s.base).into())
        .set("size", s.size.into())
        .set("kind", s.kind.api_name().into())
        .set("named", s.named.into())
        .set("writes_c", s.writes_c.into())
        .set("writes_g", s.writes_g.into())
        .set("r_cc", s.r_cc.into())
        .set("r_cg", s.r_cg.into())
        .set("r_gc", s.r_gc.into())
        .set("r_gg", s.r_gg.into())
        .set("density_pct", Json::Num(s.density_pct))
        .set("alternating", s.alternating.into())
        .set("live", s.live.into());
    j
}

/// The anti-pattern findings, with per-family counts.
pub fn report_json(r: &Report) -> Json {
    let mut counts = Json::obj();
    for (family, n) in r.counts() {
        counts.set(family, n.into());
    }
    let findings = r
        .findings
        .iter()
        .map(|f| {
            let mut j = Json::obj();
            j.set(
                "family",
                match f.kind() {
                    xplacer_core::FindingKind::Alternating => "alternating",
                    xplacer_core::FindingKind::LowDensity => "low-density",
                    xplacer_core::FindingKind::UnnecessaryTransfer => "unnecessary-transfer",
                    xplacer_core::FindingKind::UnusedAllocation => "unused-allocation",
                }
                .into(),
            )
            .set("alloc", f.alloc_name().into())
            .set("message", f.to_string().into())
            .set("remedy", f.remedy().into());
            j
        })
        .collect();
    let mut j = Json::obj();
    j.set("total", r.len().into())
        .set("by_family", counts)
        .set("findings", Json::Arr(findings));
    j
}

/// Digest of an [`EventLog`]: per-kind retained counts plus ring health.
pub fn event_log_json(log: &EventLog) -> Json {
    let mut by_kind = Json::obj();
    for ev in log.events() {
        let kind = ev.event.kind_name();
        let n = by_kind.get(kind).and_then(Json::as_u64).unwrap_or(0);
        by_kind.set(kind, (n + 1).into());
    }
    let mut j = Json::obj();
    j.set("recorded", log.total_recorded().into())
        .set("retained", log.len().into())
        .set("dropped", log.dropped().into())
        .set("truncated", (log.dropped() > 0).into())
        .set("capacity", log.capacity().into())
        .set("by_kind", by_kind);
    j
}

/// Assemble the full metrics report. `allocs` comes from
/// `xplacer_core::summarize`; `report` and `events` are optional layers —
/// pass `None` when the run had no analysis / no event log attached.
pub fn metrics_report(
    workload: &str,
    platform: &str,
    elapsed_ns: f64,
    stats: &Stats,
    allocs: &[AllocSummary],
    report: Option<&Report>,
    events: Option<&EventLog>,
) -> Json {
    let mut j = Json::obj();
    j.set("schema", METRICS_SCHEMA.into())
        .set("workload", workload.into())
        .set("platform", platform.into())
        .set("elapsed_ns", Json::Num(elapsed_ns))
        .set("stats", stats_json(stats))
        .set(
            "allocations",
            Json::Arr(allocs.iter().map(alloc_summary_json).collect()),
        );
    if let Some(r) = report {
        j.set("report", report_json(r));
    }
    if let Some(log) = events {
        // Ring health at the top level too, so dashboards reading only the
        // header learn whether counts are complete.
        j.set("events_recorded", log.total_recorded().into())
            .set("events_dropped", log.dropped().into())
            .set("events", event_log_json(log));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        Stats {
            cpu_faults: 3,
            gpu_faults: 41,
            migrations_h2d: 17,
            migrations_d2h: 2,
            bytes_migrated: 19 << 16,
            duplications: 5,
            invalidations: 1,
            evictions: 0,
            bytes_evicted: 0,
            remote_accesses: 9,
            memcpy_h2d: 2,
            memcpy_d2h: 1,
            memcpy_bytes: 3 << 20,
            kernel_launches: 7,
            cpu_reads: 100,
            cpu_writes: 50,
            gpu_reads: 800,
            gpu_writes: 400,
            allocs: 4,
            frees: 4,
        }
    }

    #[test]
    fn stats_roundtrip_through_json_text() {
        let s = sample_stats();
        let text = stats_json(&s).to_string_compact();
        let back = stats_from_json(&Json::parse(&text).unwrap());
        assert_eq!(back, s);
    }

    #[test]
    fn stats_json_includes_derived_totals() {
        let j = stats_json(&sample_stats());
        assert_eq!(j.get("total_faults").unwrap().as_u64(), Some(44));
        assert_eq!(j.get("total_migrations").unwrap().as_u64(), Some(19));
        assert_eq!(j.get("total_accesses").unwrap().as_u64(), Some(1350));
    }

    #[test]
    fn full_report_structure() {
        let s = sample_stats();
        let j = metrics_report("lulesh", "intel_pascal", 1.25e9, &s, &[], None, None);
        let text = j.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        assert_eq!(back.get("workload").unwrap().as_str(), Some("lulesh"));
        assert_eq!(back.get("elapsed_ns").unwrap().as_f64(), Some(1.25e9));
        assert!(back.get("report").is_none(), "no report layer requested");
        assert_eq!(
            stats_from_json(back.get("stats").unwrap()),
            s,
            "counters in the document equal the in-memory stats"
        );
    }

    #[test]
    fn event_log_digest_counts_by_kind() {
        use hetsim::{AttrCtx, Event, MemHook, TimedEvent};
        let mut log = EventLog::new();
        for i in 0..3 {
            MemHook::on_event(
                &mut log,
                &TimedEvent {
                    t_ns: i as f64,
                    cost_ns: 0.0,
                    ctx: AttrCtx::host(),
                    event: Event::Free { base: 0x1000 },
                },
            );
        }
        let j = event_log_json(&log);
        assert_eq!(j.get("recorded").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("truncated").unwrap().as_bool(), Some(false));
        assert_eq!(
            j.get("by_kind").unwrap().get("free").unwrap().as_u64(),
            Some(3)
        );
    }
}
