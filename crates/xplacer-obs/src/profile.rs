//! Cost-attribution profiler: folds the attributed event stream into an
//! nvprof-style per-kernel cost table, per-(kernel × allocation) cells,
//! and a "hot allocations" ranking.
//!
//! Every [`hetsim::TimedEvent`] carries the context that caused it (kernel
//! span, stream, allocation) plus its simulated cost, so this module is
//! pure folding — no re-derivation of spans from timestamps. The paper's
//! diagnostics become actionable exactly here: "which allocation made
//! `pathfinder_kernel` slow?" is a lookup in [`ProfileReport::cells`].
//!
//! Conservation: with a large-enough event ring (no drops), the counter
//! totals reconstructed from the stream equal [`hetsim::Stats`] exactly —
//! migrations count on-demand `Migration` events plus `Prefetch::pages`
//! plus `Evict::writeback_pages`, mirroring how the driver accounts them.

use std::collections::BTreeMap;

use hetsim::{Event, EventLog, TimedEvent};

use crate::events::EventTrace;
use crate::json::Json;

/// Schema tag of the profile JSON document.
pub const PROFILE_SCHEMA: &str = "xplacer-profile/1";

/// Pseudo-kernel name grouping everything that happened in host context.
pub const HOST_KERNEL: &str = "<host>";

/// Label used when an event carries no allocation attribution.
pub const NO_ALLOC: &str = "(no-alloc)";

/// Costs and counters attributed to one profile row (a kernel, a cell, an
/// allocation, or the whole run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostBreakdown {
    /// Total attributed event cost (ns). For kernels this excludes the
    /// compute remainder, which is derived from the span duration.
    pub cost_ns: f64,
    /// Fault service + invalidation overhead.
    pub fault_stall_ns: f64,
    /// Data movement: migrations, duplications, evictions, memcpys,
    /// prefetches.
    pub transfer_ns: f64,
    /// Everything else (allocation lifecycle).
    pub other_ns: f64,
    pub faults: u64,
    pub migrations: u64,
    pub bytes_migrated: u64,
    pub memcpy_bytes: u64,
    pub duplications: u64,
    pub invalidations: u64,
    pub evictions: u64,
    pub allocs: u64,
    pub frees: u64,
}

impl CostBreakdown {
    /// Fold one event's cost and counters in. Kernel begin/end markers are
    /// handled by the caller (they shape spans, not cells).
    fn absorb(&mut self, ev: &Event, cost_ns: f64) {
        self.cost_ns += cost_ns;
        match ev {
            Event::PageFault { .. } => {
                self.fault_stall_ns += cost_ns;
                self.faults += 1;
            }
            Event::Invalidate { copies, .. } => {
                self.fault_stall_ns += cost_ns;
                self.invalidations += *copies as u64;
            }
            Event::Migration { bytes, .. } => {
                self.transfer_ns += cost_ns;
                self.migrations += 1;
                self.bytes_migrated += bytes;
            }
            Event::ReadDup { .. } => {
                self.transfer_ns += cost_ns;
                self.duplications += 1;
            }
            Event::Evict {
                pages,
                writeback_pages,
                writeback_bytes,
                ..
            } => {
                // Dirty writebacks are migrations the driver performed
                // without a separate Migration event.
                self.transfer_ns += cost_ns;
                self.evictions += *pages as u64;
                self.migrations += *writeback_pages as u64;
                self.bytes_migrated += writeback_bytes;
            }
            Event::Prefetch {
                pages, bytes_moved, ..
            } => {
                self.transfer_ns += cost_ns;
                self.migrations += *pages as u64;
                self.bytes_migrated += bytes_moved;
            }
            Event::Memcpy { bytes, .. } => {
                self.transfer_ns += cost_ns;
                self.memcpy_bytes += bytes;
            }
            Event::Alloc { .. } => {
                self.other_ns += cost_ns;
                self.allocs += 1;
            }
            Event::Free { .. } => {
                self.other_ns += cost_ns;
                self.frees += 1;
            }
            Event::Advise { .. } => self.other_ns += cost_ns,
            Event::KernelBegin { .. } | Event::KernelEnd { .. } => {}
        }
    }

    /// Total bytes this context moved across the bus: page migrations
    /// (including prefetch and eviction writeback) plus explicit memcpy.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_migrated + self.memcpy_bytes
    }

    fn merge(&mut self, o: &CostBreakdown) {
        self.cost_ns += o.cost_ns;
        self.fault_stall_ns += o.fault_stall_ns;
        self.transfer_ns += o.transfer_ns;
        self.other_ns += o.other_ns;
        self.faults += o.faults;
        self.migrations += o.migrations;
        self.bytes_migrated += o.bytes_migrated;
        self.memcpy_bytes += o.memcpy_bytes;
        self.duplications += o.duplications;
        self.invalidations += o.invalidations;
        self.evictions += o.evictions;
        self.allocs += o.allocs;
        self.frees += o.frees;
    }
}

/// One row of the per-kernel table.
#[derive(Debug, Clone)]
pub struct KernelCost {
    /// Kernel name, or [`HOST_KERNEL`] for host-context work.
    pub name: String,
    /// Times the kernel was launched (0 for the host row).
    pub launches: u64,
    /// Total simulated time: summed span durations for kernels, summed
    /// attributed event cost for the host row.
    pub total_ns: f64,
    /// Span time not attributed to any driver event: launch overhead,
    /// parallel compute, and remote word accesses. Always 0 for the host
    /// row (host compute is not evented).
    pub compute_ns: f64,
    /// Attributed costs and counters.
    pub costs: CostBreakdown,
}

/// One (kernel × allocation) attribution cell.
#[derive(Debug, Clone)]
pub struct CellCost {
    /// Kernel name or [`HOST_KERNEL`].
    pub kernel: String,
    /// Allocation base, if the event resolved to one.
    pub alloc: Option<u64>,
    /// Human label for the allocation ([`NO_ALLOC`] when `alloc` is
    /// `None`, hex base when unnamed).
    pub label: String,
    pub costs: CostBreakdown,
}

/// Per-allocation rollup across all kernels, ranked by bytes moved.
#[derive(Debug, Clone)]
pub struct AllocCost {
    pub base: u64,
    pub label: String,
    pub costs: CostBreakdown,
}

/// The folded profile of one run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub workload: String,
    pub platform: String,
    pub elapsed_ns: f64,
    /// Per-kernel rows, most expensive first.
    pub kernels: Vec<KernelCost>,
    /// (kernel × allocation) cells, most expensive first.
    pub cells: Vec<CellCost>,
    /// Allocations ranked by bytes moved (then cost).
    pub allocs: Vec<AllocCost>,
    /// Run-wide counter totals (equal to `Machine::stats()` when the ring
    /// did not drop).
    pub totals: CostBreakdown,
    /// Kernel launches observed (equals `Stats::kernel_launches` when the
    /// ring did not drop).
    pub kernel_launches: u64,
    pub events_recorded: u64,
    pub events_dropped: u64,
}

impl ProfileReport {
    /// Fold `log` into a profile. `names` maps allocation bases to the
    /// allocation-site labels `core::diagnostic` knows (unknown bases fall
    /// back to their hex address).
    pub fn build(
        workload: &str,
        platform: &str,
        elapsed_ns: f64,
        log: &EventLog,
        names: &[(u64, String)],
    ) -> ProfileReport {
        Self::build_from_events(
            workload,
            platform,
            elapsed_ns,
            log.events(),
            log.total_recorded(),
            log.dropped(),
            names,
        )
    }

    /// Fold an already-materialized event sequence (e.g. a parsed
    /// [`EventTrace`]) into a profile — same folding as [`Self::build`],
    /// without requiring a live [`EventLog`].
    pub fn build_from_events<'a>(
        workload: &str,
        platform: &str,
        elapsed_ns: f64,
        events: impl IntoIterator<Item = &'a TimedEvent>,
        events_recorded: u64,
        events_dropped: u64,
        names: &[(u64, String)],
    ) -> ProfileReport {
        // (kernel, alloc) -> breakdown; BTreeMap for deterministic walk.
        let mut cells: BTreeMap<(String, Option<u64>), CostBreakdown> = BTreeMap::new();
        // kernel -> (launches, span_ns)
        let mut spans: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut kernel_launches = 0u64;

        for te in events {
            let kernel = te.ctx.kernel_name().unwrap_or(HOST_KERNEL).to_string();
            match &te.event {
                Event::KernelBegin { .. } => {
                    kernel_launches += 1;
                    spans.entry(kernel).or_insert((0, 0.0)).0 += 1;
                }
                Event::KernelEnd { .. } => {
                    spans.entry(kernel).or_insert((0, 0.0)).1 += te.cost_ns;
                }
                ev => {
                    cells
                        .entry((kernel, te.ctx.alloc))
                        .or_default()
                        .absorb(ev, te.cost_ns);
                }
            }
        }

        let label_of = |base: Option<u64>| -> String {
            match base {
                None => NO_ALLOC.to_string(),
                Some(b) => names
                    .iter()
                    .find(|(nb, _)| *nb == b)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| format!("0x{b:x}")),
            }
        };

        // Kernel rows: attributed costs per kernel + span-derived compute.
        let mut per_kernel: BTreeMap<String, CostBreakdown> = BTreeMap::new();
        for ((kernel, _), bd) in &cells {
            per_kernel.entry(kernel.clone()).or_default().merge(bd);
        }
        for k in spans.keys() {
            per_kernel.entry(k.clone()).or_default();
        }
        let mut kernels: Vec<KernelCost> = per_kernel
            .into_iter()
            .map(|(name, costs)| {
                let (launches, span_ns) = spans.get(&name).copied().unwrap_or((0, 0.0));
                let (total_ns, compute_ns) = if name == HOST_KERNEL {
                    (costs.cost_ns, 0.0)
                } else {
                    (span_ns, (span_ns - costs.cost_ns).max(0.0))
                };
                KernelCost {
                    name,
                    launches,
                    total_ns,
                    compute_ns,
                    costs,
                }
            })
            .collect();
        kernels.sort_by(|a, b| {
            b.total_ns
                .total_cmp(&a.total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });

        // Allocation rollup.
        let mut per_alloc: BTreeMap<u64, CostBreakdown> = BTreeMap::new();
        for ((_, alloc), bd) in &cells {
            if let Some(base) = alloc {
                per_alloc.entry(*base).or_default().merge(bd);
            }
        }
        let mut allocs: Vec<AllocCost> = per_alloc
            .into_iter()
            .map(|(base, costs)| AllocCost {
                base,
                label: label_of(Some(base)),
                costs,
            })
            .collect();
        allocs.sort_by(|a, b| {
            b.costs
                .bytes_moved()
                .cmp(&a.costs.bytes_moved())
                .then(b.costs.cost_ns.total_cmp(&a.costs.cost_ns))
                .then(a.base.cmp(&b.base))
        });

        // Run totals.
        let mut totals = CostBreakdown::default();
        for bd in cells.values() {
            totals.merge(bd);
        }

        let mut cell_rows: Vec<CellCost> = cells
            .into_iter()
            .map(|((kernel, alloc), costs)| CellCost {
                label: label_of(alloc),
                kernel,
                alloc,
                costs,
            })
            .collect();
        cell_rows.sort_by(|a, b| {
            b.costs
                .cost_ns
                .total_cmp(&a.costs.cost_ns)
                .then_with(|| a.kernel.cmp(&b.kernel))
                .then(a.alloc.cmp(&b.alloc))
        });

        ProfileReport {
            workload: workload.to_string(),
            platform: platform.to_string(),
            elapsed_ns,
            kernels,
            cells: cell_rows,
            allocs,
            totals,
            kernel_launches,
            events_recorded,
            events_dropped,
        }
    }

    /// Fold a recorded/parsed trace into a profile, using the trace's own
    /// workload, platform, elapsed time, and allocation names. This is the
    /// aggregation `xplacer diff` aligns two runs by.
    pub fn from_trace(trace: &EventTrace) -> ProfileReport {
        Self::build_from_events(
            &trace.workload,
            &trace.platform_name,
            trace.elapsed_ns,
            &trace.events,
            trace.recorded,
            trace.dropped,
            &trace.names,
        )
    }

    /// The allocation responsible for the most moved bytes (migrations,
    /// then explicit memcpy traffic for device-memory programs), if any
    /// traffic was attributed at all.
    pub fn hottest_alloc(&self) -> Option<&AllocCost> {
        self.allocs.first().filter(|a| a.costs.bytes_moved() > 0)
    }

    /// nvprof-style text tables. `top` bounds the hot-allocation and cell
    /// listings (kernel rows are always complete).
    pub fn render_table(&self, top: usize) -> String {
        let mut s = String::new();
        let ms = |ns: f64| ns / 1e6;
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        s.push_str(&format!(
            "==== xplacer profile: {} on {} ====\n",
            self.workload, self.platform
        ));
        s.push_str(&format!(
            "simulated total: {:.3} ms   events: {} recorded, {} dropped\n\n",
            ms(self.elapsed_ns),
            self.events_recorded,
            self.events_dropped
        ));
        if self.events_dropped > 0 {
            s.push_str(
                "WARNING: the event ring dropped events; attributed costs are UNDERCOUNTS.\n\n",
            );
        }

        s.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>12} {:>10} {:>8} {:>8} {:>10}\n",
            "kernel",
            "launches",
            "time ms",
            "compute",
            "fault-stall",
            "transfer",
            "faults",
            "migr",
            "MB moved"
        ));
        for k in &self.kernels {
            s.push_str(&format!(
                "{:<24} {:>8} {:>10.3} {:>10.3} {:>12.3} {:>10.3} {:>8} {:>8} {:>10.2}\n",
                k.name,
                if k.name == HOST_KERNEL {
                    "-".to_string()
                } else {
                    k.launches.to_string()
                },
                ms(k.total_ns),
                ms(k.compute_ns),
                ms(k.costs.fault_stall_ns),
                ms(k.costs.transfer_ns),
                k.costs.faults,
                k.costs.migrations,
                mb(k.costs.bytes_migrated + k.costs.memcpy_bytes),
            ));
        }

        s.push_str("\nhot allocations (by bytes moved: migration + memcpy):\n");
        if self.allocs.is_empty() {
            s.push_str("  (none)\n");
        }
        for (i, a) in self.allocs.iter().take(top).enumerate() {
            s.push_str(&format!(
                "  {:>2}. {:<20} base 0x{:<10x} {:>8} migr {:>10.2} MB {:>8} faults {:>10.3} ms\n",
                i + 1,
                a.label,
                a.base,
                a.costs.migrations,
                mb(a.costs.bytes_moved()),
                a.costs.faults,
                ms(a.costs.cost_ns),
            ));
        }

        s.push_str("\nper-(kernel x allocation) cells (by attributed cost):\n");
        if self.cells.is_empty() {
            s.push_str("  (none)\n");
        }
        for c in self.cells.iter().take(top) {
            s.push_str(&format!(
                "  {:<24} {:<20} {:>10.3} ms {:>8} faults {:>8} migr {:>10.2} MB\n",
                c.kernel,
                c.label,
                ms(c.costs.cost_ns),
                c.costs.faults,
                c.costs.migrations,
                mb(c.costs.bytes_migrated + c.costs.memcpy_bytes),
            ));
        }
        s
    }

    /// JSON document (schema `xplacer-profile/1`).
    pub fn to_json(&self) -> Json {
        fn costs_json(c: &CostBreakdown) -> Json {
            let mut j = Json::obj();
            j.set("cost_ns", Json::Num(c.cost_ns))
                .set("fault_stall_ns", Json::Num(c.fault_stall_ns))
                .set("transfer_ns", Json::Num(c.transfer_ns))
                .set("other_ns", Json::Num(c.other_ns))
                .set("faults", c.faults.into())
                .set("migrations", c.migrations.into())
                .set("bytes_migrated", c.bytes_migrated.into())
                .set("memcpy_bytes", c.memcpy_bytes.into())
                .set("duplications", c.duplications.into())
                .set("invalidations", c.invalidations.into())
                .set("evictions", c.evictions.into())
                .set("allocs", c.allocs.into())
                .set("frees", c.frees.into());
            j
        }
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let mut j = Json::obj();
                j.set("name", k.name.as_str().into())
                    .set("launches", k.launches.into())
                    .set("total_ns", Json::Num(k.total_ns))
                    .set("compute_ns", Json::Num(k.compute_ns))
                    .set("costs", costs_json(&k.costs));
                j
            })
            .collect();
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut j = Json::obj();
                j.set("kernel", c.kernel.as_str().into())
                    .set("alloc", c.label.as_str().into());
                if let Some(b) = c.alloc {
                    j.set("base", format!("0x{b:x}").into());
                }
                j.set("costs", costs_json(&c.costs));
                j
            })
            .collect();
        let allocs = self
            .allocs
            .iter()
            .map(|a| {
                let mut j = Json::obj();
                j.set("label", a.label.as_str().into())
                    .set("base", format!("0x{:x}", a.base).into())
                    .set("costs", costs_json(&a.costs));
                j
            })
            .collect();
        let mut events = Json::obj();
        events
            .set("recorded", self.events_recorded.into())
            .set("dropped", self.events_dropped.into());
        let mut j = Json::obj();
        j.set("schema", PROFILE_SCHEMA.into())
            .set("workload", self.workload.as_str().into())
            .set("platform", self.platform.as_str().into())
            .set("elapsed_ns", Json::Num(self.elapsed_ns))
            .set("events", events)
            .set("kernel_launches", self.kernel_launches.into())
            .set("totals", costs_json(&self.totals))
            .set("kernels", Json::Arr(kernels))
            .set("cells", Json::Arr(cells))
            .set("hot_allocs", Json::Arr(allocs));
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, Device, Event, EventLog, Machine, MemAdvise};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn profiled_run() -> (Machine, EventLog) {
        let mut m = Machine::new(platform::intel_pascal());
        let log = Rc::new(RefCell::new(EventLog::with_capacity(1 << 20)));
        m.attach_hook(log.clone());
        let a = m.alloc_managed::<f64>(4096);
        let b = m.alloc_managed::<f64>(4096);
        m.mem_advise(a, MemAdvise::SetReadMostly);
        for i in 0..a.len {
            m.st(a, i, 1.0);
            m.st(b, i, 2.0);
        }
        m.launch("reader", a.len, |t, m| {
            let _ = m.ld(a, t);
        });
        m.launch("writer", b.len, |t, m| {
            m.st(b, t, 3.0);
        });
        m.mem_prefetch(b, Device::Cpu);
        m.free(a);
        m.free(b);
        let log = log.borrow().clone();
        (m, log)
    }

    #[test]
    fn totals_match_machine_stats_exactly() {
        let (mut m, log) = profiled_run();
        let elapsed = m.elapsed_ns();
        let p = ProfileReport::build("micro", "intel_pascal", elapsed, &log, &[]);
        assert_eq!(p.events_dropped, 0, "ring must not truncate in this test");
        let s = &m.stats;
        assert_eq!(p.totals.faults, s.faults());
        assert_eq!(p.totals.migrations, s.migrations());
        assert_eq!(p.totals.bytes_migrated, s.bytes_migrated);
        assert_eq!(p.totals.memcpy_bytes, s.memcpy_bytes);
        assert_eq!(p.totals.duplications, s.duplications);
        assert_eq!(p.totals.invalidations, s.invalidations);
        assert_eq!(p.totals.evictions, s.evictions);
        assert_eq!(p.totals.allocs, s.allocs);
        assert_eq!(p.totals.frees, s.frees);
        assert_eq!(p.kernel_launches, s.kernel_launches);
    }

    #[test]
    fn per_kernel_rows_split_compute_from_stalls() {
        let (mut m, log) = profiled_run();
        let elapsed = m.elapsed_ns();
        let p = ProfileReport::build("micro", "intel_pascal", elapsed, &log, &[]);
        let reader = p.kernels.iter().find(|k| k.name == "reader").unwrap();
        assert_eq!(reader.launches, 1);
        assert!(reader.total_ns > 0.0);
        assert!(reader.compute_ns > 0.0, "launch + word costs remain");
        assert!(reader.costs.faults > 0, "GPU first touch faults");
        assert!(
            reader.compute_ns + reader.costs.cost_ns <= reader.total_ns * 1.0000001,
            "attribution never exceeds the span"
        );
        let host = p.kernels.iter().find(|k| k.name == HOST_KERNEL).unwrap();
        assert!(host.costs.allocs == 2 && host.costs.frees == 2);
    }

    #[test]
    fn names_label_hot_allocations() {
        let (mut m, log) = profiled_run();
        let elapsed = m.elapsed_ns();
        // Find the two managed bases from the log's alloc events.
        let bases: Vec<u64> = log
            .events()
            .filter_map(|e| match e.event {
                Event::Alloc { base, .. } => Some(base),
                _ => None,
            })
            .collect();
        let names: Vec<(u64, String)> = bases
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, format!("arr{i}")))
            .collect();
        let p = ProfileReport::build("micro", "intel_pascal", elapsed, &log, &names);
        let hot = p.hottest_alloc().expect("traffic was attributed");
        assert!(hot.label.starts_with("arr"));
        assert!(hot.costs.bytes_migrated > 0);
    }

    #[test]
    fn empty_log_is_an_empty_but_valid_profile() {
        let log = EventLog::new();
        let p = ProfileReport::build("none", "intel_pascal", 0.0, &log, &[]);
        assert!(p.kernels.is_empty() && p.cells.is_empty() && p.allocs.is_empty());
        assert_eq!(p.totals, CostBreakdown::default());
        assert!(p.hottest_alloc().is_none());
        let text = p.render_table(10);
        assert!(text.contains("(none)"));
        let j = p.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some("xplacer-profile/1"));
        assert!(Json::parse(&j.to_string_pretty()).is_ok());
    }

    #[test]
    fn json_and_table_are_deterministic() {
        let (mut m1, log1) = profiled_run();
        let e1 = m1.elapsed_ns();
        let (mut m2, log2) = profiled_run();
        let e2 = m2.elapsed_ns();
        let p1 = ProfileReport::build("micro", "intel_pascal", e1, &log1, &[]);
        let p2 = ProfileReport::build("micro", "intel_pascal", e2, &log2, &[]);
        assert_eq!(
            p1.to_json().to_string_compact(),
            p2.to_json().to_string_compact()
        );
        assert_eq!(p1.render_table(5), p2.render_table(5));
    }
}
