//! Streaming time-series telemetry: per-allocation counters bucketed into
//! fixed simulated-time epochs, with hierarchical downsampling so memory
//! stays O(buckets) no matter how long the run is.
//!
//! [`Telemetry`] is a [`MemHook`] consumer of the structured event stream
//! (attach alongside the tracer with `Machine::add_hook`). Every event
//! folds into the [`Sample`] of its epoch — globally and per allocation —
//! using the same counter mapping as the profiler's `CostBreakdown`, so
//! the time axis decomposes exactly the totals the other exporters report.
//!
//! When a series outgrows [`TelemetryConfig::max_buckets`], adjacent
//! epochs merge pairwise (`new[i] = old[2i] + old[2i+1]`) and the epoch
//! width doubles. Every counter is an integer, so merging is plain `u64`
//! addition: **sums are conserved bit-exactly** across any number of
//! downsampling rounds — the invariant the conservation tests pin down.
//! Rates (bandwidth, interconnect utilization) are *derived* at render
//! time from the conserved integers, never stored.

use std::collections::BTreeMap;

use hetsim::{AccessKind, Addr, AllocKind, CopyKind, Device, Event, MemHook, TimedEvent};

use crate::json::Json;
use xplacer_core::Episode;

/// Schema tag of the document [`timeseries_json`] writes.
pub const TIMESERIES_SCHEMA: &str = "xplacer-timeseries/1";

/// One epoch's worth of counters. All integers, so bucket merges are
/// exact; see the module docs for the conservation invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Structured events observed (all kinds).
    pub events: u64,
    /// Page faults (CPU + GPU).
    pub faults: u64,
    /// Pages moved host→device (on-demand + prefetch).
    pub migrations_h2d: u64,
    /// Pages moved device→host (on-demand + eviction writeback).
    pub migrations_d2h: u64,
    /// ReadMostly pages duplicated.
    pub read_dups: u64,
    /// Duplicated copies invalidated by writes.
    pub invalidations: u64,
    /// Pages evicted by oversubscription.
    pub evictions: u64,
    /// Dirty subset of evicted pages written back.
    pub writebacks: u64,
    /// Bytes that crossed the interconnect (migrations + writebacks +
    /// prefetches + explicit copies) — the numerator of utilization.
    pub bytes_moved: u64,
}

/// One named-counter accessor in [`Sample::FIELDS`].
pub type SampleField = (&'static str, fn(&Sample) -> u64);

impl Sample {
    /// Name → accessor table driving JSON export and dashboard rows, so
    /// every surface renders the same counters in the same order.
    pub const FIELDS: &'static [SampleField] = &[
        ("events", |s| s.events),
        ("faults", |s| s.faults),
        ("migrations_h2d", |s| s.migrations_h2d),
        ("migrations_d2h", |s| s.migrations_d2h),
        ("read_dups", |s| s.read_dups),
        ("invalidations", |s| s.invalidations),
        ("evictions", |s| s.evictions),
        ("writebacks", |s| s.writebacks),
        ("bytes_moved", |s| s.bytes_moved),
    ];

    /// Fold one event in. The mapping mirrors the profiler's
    /// `CostBreakdown::absorb`: eviction writebacks count as D2H
    /// migrations with their bytes in `bytes_moved`, prefetched pages
    /// count as migrations, ReadDup bytes do *not* count as moved (the
    /// paper charges duplication separately from migration traffic).
    pub fn absorb(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::PageFault { .. } => self.faults += 1,
            Event::Migration { to, bytes, .. } => {
                if to.is_gpu() {
                    self.migrations_h2d += 1;
                } else {
                    self.migrations_d2h += 1;
                }
                self.bytes_moved += bytes;
            }
            Event::ReadDup { .. } => self.read_dups += 1,
            Event::Invalidate { copies, .. } => self.invalidations += u64::from(*copies),
            Event::Evict {
                pages,
                writeback_pages,
                writeback_bytes,
                ..
            } => {
                self.evictions += u64::from(*pages);
                self.writebacks += u64::from(*writeback_pages);
                self.migrations_d2h += u64::from(*writeback_pages);
                self.bytes_moved += writeback_bytes;
            }
            Event::Memcpy { bytes, .. } => self.bytes_moved += bytes,
            Event::Prefetch {
                pages,
                bytes_moved,
                to,
                ..
            } => {
                if to.is_gpu() {
                    self.migrations_h2d += u64::from(*pages);
                } else {
                    self.migrations_d2h += u64::from(*pages);
                }
                self.bytes_moved += bytes_moved;
            }
            _ => {}
        }
    }

    /// Exact integer merge of two epochs (the downsampling step).
    pub fn merge(&mut self, other: &Sample) {
        self.events += other.events;
        self.faults += other.faults;
        self.migrations_h2d += other.migrations_h2d;
        self.migrations_d2h += other.migrations_d2h;
        self.read_dups += other.read_dups;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.bytes_moved += other.bytes_moved;
    }
}

/// Epoch width and memory bound of a [`Telemetry`] consumer.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Initial epoch width in simulated ns. Doubles on each downsample.
    pub epoch_ns: f64,
    /// Bucket cap per series; reaching it merges adjacent pairs.
    pub max_buckets: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_ns: 1024.0,
            max_buckets: 256,
        }
    }
}

/// One allocation's series and identity.
#[derive(Debug, Clone)]
pub struct AllocSeries {
    pub base: Addr,
    pub bytes: u64,
    pub kind: AllocKind,
    pub live: bool,
    /// Per-epoch samples (same epoch width as the global series).
    pub buckets: Vec<Sample>,
    /// Lifetime totals (equal to the bucket sums — tested invariant).
    pub total: Sample,
}

/// The streaming telemetry consumer. Attach with `Machine::add_hook`;
/// purely observational (never alters simulation results or timing).
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// Current epoch width (doubles with each downsample round).
    epoch_ns: f64,
    /// Downsample rounds performed.
    pub downsamples: u32,
    /// Model interconnect peak (bytes/ns) for derived utilization.
    peak_bw: f64,
    global: Vec<Sample>,
    total: Sample,
    allocs: BTreeMap<Addr, AllocSeries>,
    /// Latest event timestamp seen.
    now_ns: f64,
}

impl Telemetry {
    /// `peak_bw` is the platform's `link_bw` in bytes/ns.
    pub fn new(cfg: TelemetryConfig, peak_bw: f64) -> Self {
        assert!(cfg.epoch_ns > 0.0, "epoch width must be positive");
        assert!(cfg.max_buckets >= 2, "need at least two buckets to merge");
        Telemetry {
            epoch_ns: cfg.epoch_ns,
            cfg,
            downsamples: 0,
            peak_bw: peak_bw.max(f64::MIN_POSITIVE),
            global: Vec::new(),
            total: Sample::default(),
            allocs: BTreeMap::new(),
            now_ns: 0.0,
        }
    }

    /// Current epoch width in simulated ns.
    pub fn epoch_ns(&self) -> f64 {
        self.epoch_ns
    }

    /// Model interconnect peak in bytes/ns.
    pub fn peak_bw(&self) -> f64 {
        self.peak_bw
    }

    /// Latest simulated timestamp observed.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// The machine-wide series, one [`Sample`] per epoch.
    pub fn global(&self) -> &[Sample] {
        &self.global
    }

    /// Lifetime machine-wide totals.
    pub fn total(&self) -> &Sample {
        &self.total
    }

    /// Per-allocation series, keyed by base address (deterministic order).
    pub fn allocs(&self) -> impl Iterator<Item = &AllocSeries> {
        self.allocs.values()
    }

    /// Derived utilization of one epoch: bytes moved over what the link
    /// could move in that epoch, as a fraction (may exceed 1.0 when copies
    /// overlap on streams).
    pub fn utilization(&self, s: &Sample) -> f64 {
        s.bytes_moved as f64 / (self.peak_bw * self.epoch_ns)
    }

    fn bucket_index(&mut self, t_ns: f64) -> usize {
        loop {
            let idx = (t_ns.max(0.0) / self.epoch_ns) as usize;
            if idx < self.cfg.max_buckets {
                return idx;
            }
            self.downsample();
        }
    }

    /// Merge adjacent epoch pairs everywhere and double the epoch width.
    fn downsample(&mut self) {
        fn halve(buckets: &mut Vec<Sample>) {
            let mut merged = Vec::with_capacity(buckets.len().div_ceil(2) + 1);
            for pair in buckets.chunks(2) {
                let mut s = pair[0];
                if let Some(b) = pair.get(1) {
                    s.merge(b);
                }
                merged.push(s);
            }
            *buckets = merged;
        }
        halve(&mut self.global);
        for series in self.allocs.values_mut() {
            halve(&mut series.buckets);
        }
        self.epoch_ns *= 2.0;
        self.downsamples += 1;
    }

    fn ingest(&mut self, ev: &TimedEvent) {
        self.now_ns = self.now_ns.max(ev.t_ns);
        let idx = self.bucket_index(ev.t_ns);
        if self.global.len() <= idx {
            self.global.resize(idx + 1, Sample::default());
        }
        self.global[idx].absorb(&ev.event);
        self.total.absorb(&ev.event);

        // Identity bookkeeping, then charge the owning allocation.
        match &ev.event {
            Event::Alloc { base, bytes, kind } => {
                self.allocs.insert(
                    *base,
                    AllocSeries {
                        base: *base,
                        bytes: *bytes,
                        kind: *kind,
                        live: true,
                        buckets: Vec::new(),
                        total: Sample::default(),
                    },
                );
            }
            Event::Free { base } => {
                if let Some(s) = self.allocs.get_mut(base) {
                    s.live = false;
                }
            }
            _ => {}
        }
        let owner = ev.ctx.alloc.or(match &ev.event {
            Event::Alloc { base, .. } | Event::Free { base } => Some(*base),
            _ => None,
        });
        if let Some(base) = owner {
            if let Some(series) = self.allocs.get_mut(&base) {
                if series.buckets.len() <= idx {
                    series.buckets.resize(idx + 1, Sample::default());
                }
                series.buckets[idx].absorb(&ev.event);
                series.total.absorb(&ev.event);
            }
        }
    }
}

impl MemHook for Telemetry {
    // Telemetry listens only to the structured stream; word traffic is
    // already aggregated by Stats and would dominate hook overhead.
    fn on_alloc(&mut self, _base: Addr, _size: u64, _kind: AllocKind) {}
    fn on_free(&mut self, _base: Addr) {}
    fn on_read(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    fn on_write(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    fn on_access_range(&mut self, _: Device, _: Addr, _: u32, _: u64, _: AccessKind) {}
    fn on_memcpy(&mut self, _dst: Addr, _src: Addr, _bytes: u64, _kind: CopyKind) {}
    fn on_kernel_launch(&mut self, _name: &str) {}

    fn on_event(&mut self, ev: &TimedEvent) {
        self.ingest(ev);
    }
}

fn sample_fields_json(s: &Sample) -> Json {
    let mut j = Json::obj();
    for (name, get) in Sample::FIELDS {
        j.set(name, get(s).into());
    }
    j
}

fn series_json(t: &Telemetry, buckets: &[Sample]) -> Json {
    let mut j = Json::obj();
    for (name, get) in Sample::FIELDS {
        j.set(
            name,
            Json::Arr(buckets.iter().map(|s| get(s).into()).collect()),
        );
    }
    // Derived, not stored: percent of model link peak per epoch.
    j.set(
        "utilization_pct",
        Json::Arr(
            buckets
                .iter()
                .map(|s| Json::Num((t.utilization(s) * 100.0 * 100.0).round() / 100.0))
                .collect(),
        ),
    );
    j
}

fn episode_json(e: &Episode) -> Json {
    let mut j = Json::obj();
    j.set("kind", e.kind.label().into());
    if let Some(a) = e.alloc {
        j.set("alloc", format!("0x{a:x}").into());
    }
    j.set("start_ns", Json::Num(e.start_ns))
        .set("end_ns", Json::Num(e.end_ns))
        .set("span_ns", Json::Num(e.span_ns()))
        .set("pages", e.pages.into())
        .set("trips", e.trips.into())
        .set("events", e.events.into())
        .set("cost_ns", Json::Num(e.cost_ns))
        .set("bytes", e.bytes.into())
        .set("active", e.active.into());
    j
}

/// Serialize the full telemetry state: conserved totals, the global
/// series, every allocation's series, and the detected episodes.
pub fn timeseries_json(
    t: &Telemetry,
    workload: &str,
    platform: &str,
    episodes: &[Episode],
) -> Json {
    let mut j = Json::obj();
    j.set("schema", TIMESERIES_SCHEMA.into())
        .set("workload", workload.into())
        .set("platform", platform.into())
        .set("epoch_ns", Json::Num(t.epoch_ns()))
        .set("buckets", t.global().len().into())
        .set("downsamples", u64::from(t.downsamples).into())
        .set("peak_bw_bytes_per_ns", Json::Num(t.peak_bw()))
        .set("totals", sample_fields_json(t.total()))
        .set("series", series_json(t, t.global()));
    let allocs = t
        .allocs()
        .map(|a| {
            let mut aj = Json::obj();
            aj.set("base", format!("0x{:x}", a.base).into())
                .set("bytes", a.bytes.into())
                .set("kind", a.kind.api_name().into())
                .set("live", a.live.into())
                .set("totals", sample_fields_json(&a.total))
                .set("series", series_json(t, &a.buckets));
            aj
        })
        .collect();
    j.set("allocations", Json::Arr(allocs));
    j.set(
        "episodes",
        Json::Arr(episodes.iter().map(episode_json).collect()),
    );
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::AttrCtx;

    fn ev(t: f64, alloc: Option<Addr>, event: Event) -> TimedEvent {
        TimedEvent {
            t_ns: t,
            cost_ns: 1.0,
            ctx: AttrCtx {
                alloc,
                ..AttrCtx::host()
            },
            event,
        }
    }

    fn feed(t: &mut Telemetry, events: &[TimedEvent]) {
        for e in events {
            MemHook::on_event(t, e);
        }
    }

    fn fault(t: f64, alloc: Addr, page: u64) -> TimedEvent {
        ev(
            t,
            Some(alloc),
            Event::PageFault {
                dev: Device::GPU0,
                page,
                write: false,
            },
        )
    }

    #[test]
    fn buckets_fill_by_epoch_and_totals_track() {
        let mut t = Telemetry::new(
            TelemetryConfig {
                epoch_ns: 100.0,
                max_buckets: 16,
            },
            12.0,
        );
        feed(
            &mut t,
            &[
                fault(0.0, 0x1000, 0),
                fault(50.0, 0x1000, 1),
                fault(250.0, 0x1000, 2),
            ],
        );
        assert_eq!(t.global().len(), 3);
        assert_eq!(t.global()[0].faults, 2);
        assert_eq!(t.global()[1].faults, 0);
        assert_eq!(t.global()[2].faults, 1);
        assert_eq!(t.total().faults, 3);
        assert_eq!(t.now_ns(), 250.0);
    }

    #[test]
    fn downsampling_conserves_every_field_and_bounds_memory() {
        let mut t = Telemetry::new(
            TelemetryConfig {
                epoch_ns: 10.0,
                max_buckets: 4,
            },
            12.0,
        );
        // 100 epochs of activity into a 4-bucket cap: many merge rounds.
        for i in 0..100u64 {
            MemHook::on_event(
                &mut t,
                &ev(
                    i as f64 * 10.0,
                    None,
                    Event::Migration {
                        page: i,
                        to: if i % 2 == 0 {
                            Device::GPU0
                        } else {
                            Device::Cpu
                        },
                        bytes: 65_536,
                    },
                ),
            );
        }
        assert!(t.global().len() <= 4, "memory stays O(max_buckets)");
        assert!(t.downsamples >= 5, "cap forced repeated merges");
        assert_eq!(t.epoch_ns(), 10.0 * f64::from(1u32 << t.downsamples));
        for (name, get) in Sample::FIELDS {
            let bucket_sum: u64 = t.global().iter().map(get).sum();
            assert_eq!(bucket_sum, get(t.total()), "field `{name}` conserved");
        }
        assert_eq!(t.total().migrations_h2d, 50);
        assert_eq!(t.total().migrations_d2h, 50);
        assert_eq!(t.total().bytes_moved, 100 * 65_536);
    }

    #[test]
    fn per_allocation_series_follow_attribution() {
        let mut t = Telemetry::new(TelemetryConfig::default(), 12.0);
        let a = 0x1000;
        let b = 0x2000;
        feed(
            &mut t,
            &[
                ev(
                    0.0,
                    None,
                    Event::Alloc {
                        base: a,
                        bytes: 4096,
                        kind: AllocKind::Managed,
                    },
                ),
                ev(
                    0.0,
                    None,
                    Event::Alloc {
                        base: b,
                        bytes: 8192,
                        kind: AllocKind::Managed,
                    },
                ),
                fault(10.0, a, 0),
                fault(20.0, a, 1),
                fault(30.0, b, 2),
                ev(40.0, None, Event::Free { base: b }),
            ],
        );
        let series: Vec<&AllocSeries> = t.allocs().collect();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].base, a);
        assert_eq!(series[0].total.faults, 2);
        assert!(series[0].live);
        assert_eq!(series[1].total.faults, 1);
        assert!(!series[1].live);
        // Alloc/free events charge their own allocation.
        assert_eq!(series[0].total.events, 3);
        assert_eq!(series[1].total.events, 3);
    }

    #[test]
    fn eviction_folds_like_the_profiler() {
        let mut t = Telemetry::new(TelemetryConfig::default(), 12.0);
        MemHook::on_event(
            &mut t,
            &ev(
                0.0,
                None,
                Event::Evict {
                    pages: 4,
                    bytes: 262_144,
                    writeback_pages: 3,
                    writeback_bytes: 196_608,
                },
            ),
        );
        let s = t.total();
        assert_eq!(s.evictions, 4);
        assert_eq!(s.writebacks, 3);
        assert_eq!(s.migrations_d2h, 3, "writebacks count as D2H traffic");
        assert_eq!(s.bytes_moved, 196_608);
    }

    #[test]
    fn utilization_is_derived_from_conserved_bytes() {
        let t = Telemetry::new(
            TelemetryConfig {
                epoch_ns: 1000.0,
                max_buckets: 8,
            },
            12.0,
        );
        let s = Sample {
            bytes_moved: 6_000,
            ..Sample::default()
        };
        assert!((t.utilization(&s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_export_is_deterministic_and_parseable() {
        let build = || {
            let mut t = Telemetry::new(
                TelemetryConfig {
                    epoch_ns: 50.0,
                    max_buckets: 8,
                },
                12.0,
            );
            feed(
                &mut t,
                &[
                    ev(
                        0.0,
                        None,
                        Event::Alloc {
                            base: 0x1000,
                            bytes: 4096,
                            kind: AllocKind::Managed,
                        },
                    ),
                    fault(10.0, 0x1000, 0),
                    fault(300.0, 0x1000, 1),
                ],
            );
            timeseries_json(&t, "demo", "intel_pascal", &[]).to_string_pretty()
        };
        let a = build();
        assert_eq!(a, build());
        let doc = Json::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(TIMESERIES_SCHEMA));
        assert_eq!(
            doc.get("totals").unwrap().get("faults").unwrap().as_u64(),
            Some(2)
        );
        let lanes = doc.get("series").unwrap();
        assert_eq!(lanes.get("faults").unwrap().as_arr().unwrap().len(), 7);
        assert!(lanes.get("utilization_pct").is_some());
    }
}
