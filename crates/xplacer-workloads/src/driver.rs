//! Uniform setup → hook → run → check driver over all eight built-in
//! workloads.
//!
//! Every consumer that runs a workload by name (CLI `demo`/`profile`/
//! `top`, the optimizer's candidate evaluations) needs the same shape:
//! build the workload on a machine, learn its allocation names, do
//! something *between setup and the compute phase* (register tracer
//! names, apply a placement plan), then run and verify. This module owns
//! that sequencing so the placement point is a single callback instead of
//! eight copies of a match.

use hetsim::{Addr, Machine};

/// Human-facing list for usage strings.
pub const WORKLOADS: &str = "lulesh | sw | pathfinder | backprop | gaussian | lud | nn | cfd";

/// Canonical workload names, in the order reports enumerate them.
pub const WORKLOAD_NAMES: [&str; 8] = [
    "lulesh",
    "sw",
    "pathfinder",
    "backprop",
    "gaussian",
    "lud",
    "nn",
    "cfd",
];

/// Run the named workload on `m`. `after_setup` fires once, after the
/// workload has allocated and initialized its data but before any
/// compute — the point where `cudaMemAdvise`/prefetch hints belong —
/// with the machine and the workload's `(address, name)` table. Returns
/// the workload's check value and that table.
pub fn run_workload(
    m: &mut Machine,
    which: &str,
    mut after_setup: impl FnMut(&mut Machine, &[(Addr, String)]),
) -> Result<(f64, Vec<(Addr, String)>), String> {
    use crate as w;
    let names: Vec<(Addr, String)>;
    let check = match which {
        "lulesh" => {
            let cfg = w::lulesh::LuleshConfig::new(8, 3);
            let mut l = w::lulesh::Lulesh::setup(m, cfg, w::lulesh::LuleshVariant::Baseline);
            names = l.names();
            after_setup(m, &names);
            l.run(m, cfg.steps, |_, _| {});
            l.check(m)
        }
        "sw" | "smith-waterman" => {
            let cfg = w::smith_waterman::SwConfig::square(128);
            let mut s = w::smith_waterman::SmithWaterman::setup(
                m,
                cfg,
                w::smith_waterman::SwVariant::Baseline,
            );
            names = s.names();
            after_setup(m, &names);
            s.run(m, |_, _| {});
            s.peek_score(m) as f64
        }
        "pathfinder" => {
            let cfg = w::rodinia::pathfinder::PathfinderConfig::new(512, 101, 20);
            let mut p = w::rodinia::pathfinder::Pathfinder::setup(
                m,
                cfg,
                w::rodinia::pathfinder::PathfinderVariant::Baseline,
            );
            names = p.names();
            after_setup(m, &names);
            p.run(m, |_, _| {});
            p.check(m)
        }
        "backprop" => {
            let mut b = w::rodinia::backprop::Backprop::setup(
                m,
                w::rodinia::backprop::BackpropConfig::new(1024),
            );
            names = b.names();
            after_setup(m, &names);
            b.run(m);
            b.check()
        }
        "gaussian" => {
            let mut g = w::rodinia::gaussian::Gaussian::setup(
                m,
                w::rodinia::gaussian::GaussianConfig::new(48),
            );
            names = g.names();
            after_setup(m, &names);
            g.run(m);
            g.check()
        }
        "lud" => {
            let mut l = w::rodinia::lud::Lud::setup(m, w::rodinia::lud::LudConfig::new(48));
            names = l.names();
            after_setup(m, &names);
            l.run(m, |_, _| {});
            l.check(m)
        }
        "nn" => {
            let mut n = w::rodinia::nn::Nn::setup(m, w::rodinia::nn::NnConfig::new(2048));
            names = n.names();
            after_setup(m, &names);
            n.run(m);
            n.nearest().1 as f64
        }
        "cfd" => {
            let mut c = w::rodinia::cfd::Cfd::setup(m, w::rodinia::cfd::CfdConfig::new(1024, 8));
            names = c.names();
            after_setup(m, &names);
            c.run(m);
            c.check()
        }
        other => return Err(format!("unknown workload `{other}` (expected {WORKLOADS})")),
    };
    Ok((check, names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform;

    #[test]
    fn every_canonical_name_runs_and_checks() {
        for which in WORKLOAD_NAMES {
            let mut m = Machine::new(platform::intel_pascal());
            let mut fired = 0;
            let (check, names) = run_workload(&mut m, which, |_, n| {
                fired += 1;
                assert!(!n.is_empty(), "{which} exposes no names");
            })
            .unwrap();
            assert_eq!(fired, 1, "{which} must call after_setup exactly once");
            assert!(check.is_finite(), "{which} check value");
            assert!(!names.is_empty());
        }
    }

    #[test]
    fn unknown_workload_is_a_spanned_error() {
        let mut m = Machine::new(platform::intel_pascal());
        let e = run_workload(&mut m, "nope", |_, _| {}).unwrap_err();
        assert!(e.contains("unknown workload `nope`"), "{e}");
        assert!(e.contains("lulesh"), "{e}");
    }

    #[test]
    fn hints_in_the_callback_do_not_change_the_check_value() {
        // The placement point must be result-neutral: pin every
        // allocation to the GPU and the workload still verifies.
        let baseline = {
            let mut m = Machine::new(platform::intel_pascal());
            run_workload(&mut m, "lulesh", |_, _| {}).unwrap().0
        };
        let mut m = Machine::new(platform::intel_pascal());
        let (hinted, _) = run_workload(&mut m, "lulesh", |m, names| {
            for (addr, _) in names {
                let Ok(a) = m.find_alloc(*addr) else { continue };
                let (base, size) = (a.base, a.size);
                let _ = m.try_mem_advise(
                    base,
                    size,
                    hetsim::MemAdvise::SetPreferredLocation(hetsim::Device::GPU0),
                );
            }
        })
        .unwrap();
        assert_eq!(baseline.to_bits(), hinted.to_bits());
    }
}
