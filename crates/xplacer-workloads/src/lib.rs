//! # xplacer-workloads — the paper's evaluation applications
//!
//! Ports of the applications XPlacer is evaluated on (paper §IV), running
//! against the [`hetsim`] simulator with the allocation, kernel, and
//! transfer structure that the paper's findings depend on:
//!
//! * [`lulesh`] — the LULESH 2 RAJA/CUDA proxy app with its singleton
//!   domain object, per-step temporary allocations, and the four remedy
//!   variants of Fig. 6;
//! * [`smith_waterman`] — anti-diagonal wavefront alignment, row-major
//!   baseline vs the rotated-matrix optimization of Fig. 9;
//! * [`rodinia`] — Backprop, CFD, Gaussian, LUD, NN, and Pathfinder
//!   (baseline + overlapped-transfer variant, Figs. 10/11), each with the
//!   Table II data-flow quirks intact.
//!
//! Every workload computes a real result that is verified against a
//! plain-Rust reference, and is identical across its variants.

pub mod driver;
pub mod lulesh;
pub mod result;
pub mod rodinia;
pub mod smith_waterman;

pub use driver::{run_workload, WORKLOADS, WORKLOAD_NAMES};
pub use result::RunResult;

use std::cell::RefCell;
use std::rc::Rc;

use xplacer_core::Tracer;

/// Register a workload's `(address, name)` pairs with a tracer — the
/// runtime effect of the paper's `#pragma xpl diagnostic` argument
/// expansion.
pub fn register_names(tracer: &Rc<RefCell<Tracer>>, names: &[(hetsim::Addr, String)]) {
    let mut t = tracer.borrow_mut();
    for (addr, name) in names {
        t.name(*addr, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, Machine};
    use xplacer_core::attach_tracer;

    #[test]
    fn register_names_is_visible_in_summaries() {
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = attach_tracer(&mut m);
        let l = lulesh::Lulesh::setup(
            &mut m,
            lulesh::LuleshConfig::new(2, 1),
            lulesh::LuleshVariant::Baseline,
        );
        register_names(&tracer, &l.names());
        let summaries = xplacer_core::summarize(&tracer.borrow().smt, true);
        assert!(summaries.iter().any(|s| s.name == "dom"));
        assert!(summaries.iter().any(|s| s.name == "(dom)->m_e"));
    }
}
