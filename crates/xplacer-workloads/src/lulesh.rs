//! LULESH 2 proxy: a structurally faithful port of the RAJA/CUDA LULESH
//! configuration the paper analyzes (§II-C, §III-D, §IV-A).
//!
//! What matters for the reproduction is the *data-flow shape*, which this
//! port preserves exactly:
//!
//! * a singleton `Domain` object in managed memory holding pointers to
//!   ~45 dynamically allocated data arrays (also managed) plus scalars;
//! * per timestep, ~30 GPU kernels; before each launch the *CPU* reads
//!   domain fields (the RAJA lambda captures), and inside each kernel the
//!   *GPU* dereferences the same domain object — so the domain page
//!   alternates between processors;
//! * two kernels need temporary storage: the CPU allocates managed
//!   memory, stores the pointer into the domain object (a CPU *write* to
//!   the shared page), launches, and frees afterwards — twice per step;
//! * a time-constraint reduction written by the GPU and read by the CPU
//!   each step;
//! * a disjoint set of CPU-only arrays (the non-MPI version's host work).
//!
//! The five variants are the paper's §IV-A experiments: the unmodified
//! baseline plus the four remedies of Fig. 6.

use hetsim::{Addr, Device, Machine, MemAdvise, TPtr};

use crate::result::RunResult;

/// Which side of the machine uses an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Sized by node count, used by GPU kernels.
    Node,
    /// Sized by element count, used by GPU kernels.
    Elem,
    /// Host-only data (symmetry/region lists).
    Cpu,
}

/// The 45 persistent data arrays of the domain, in field order.
pub const ARRAYS: &[(&str, Space)] = &[
    ("m_x", Space::Node),
    ("m_y", Space::Node),
    ("m_z", Space::Node),
    ("m_xd", Space::Node),
    ("m_yd", Space::Node),
    ("m_zd", Space::Node),
    ("m_xdd", Space::Node),
    ("m_ydd", Space::Node),
    ("m_zdd", Space::Node),
    ("m_fx", Space::Node),
    ("m_fy", Space::Node),
    ("m_fz", Space::Node),
    ("m_nodalMass", Space::Node),
    ("m_e", Space::Elem),
    ("m_p", Space::Elem),
    ("m_q", Space::Elem),
    ("m_ql", Space::Elem),
    ("m_qq", Space::Elem),
    ("m_v", Space::Elem),
    ("m_volo", Space::Elem),
    ("m_vnew", Space::Elem),
    ("m_delv", Space::Elem),
    ("m_vdov", Space::Elem),
    ("m_arealg", Space::Elem),
    ("m_ss", Space::Elem),
    ("m_elemMass", Space::Elem),
    ("m_dxx", Space::Elem),
    ("m_dyy", Space::Elem),
    ("m_dzz", Space::Elem),
    ("m_delv_xi", Space::Elem),
    ("m_delv_eta", Space::Elem),
    ("m_delv_zeta", Space::Elem),
    ("m_delx_xi", Space::Elem),
    ("m_delx_eta", Space::Elem),
    ("m_delx_zeta", Space::Elem),
    ("m_p_old", Space::Elem),
    ("m_q_old", Space::Elem),
    ("m_compression", Space::Elem),
    ("m_compHalfStep", Space::Elem),
    ("m_work", Space::Elem),
    ("m_regElemSize", Space::Cpu),
    ("m_regElemList", Space::Cpu),
    ("m_symmX", Space::Cpu),
    ("m_symmY", Space::Cpu),
    ("m_symmZ", Space::Cpu),
];

/// Domain field indices. Fields are `u64` slots: array pointers first,
/// then temp-storage pointers and scalars, padded to the 3736-byte object
/// size the paper reports for the domain (Fig. 5 caption).
pub const F_TMP0: usize = ARRAYS.len();
pub const F_TMP1: usize = ARRAYS.len() + 1;
pub const F_NUMELEM: usize = ARRAYS.len() + 2;
pub const F_NUMNODE: usize = ARRAYS.len() + 3;
pub const F_TIME: usize = ARRAYS.len() + 4;
pub const F_DT: usize = ARRAYS.len() + 5;
pub const F_CYCLE: usize = ARRAYS.len() + 6;
/// 467 u64 fields = 3736 bytes, matching the paper.
pub const DOM_FIELDS: usize = 467;

/// One GPU kernel of the timestep: which arrays it reads/writes (indices
/// into [`ARRAYS`]) and whether it needs freshly allocated temp storage.
struct KernelSpec {
    name: &'static str,
    reads: [usize; 2],
    write: usize,
    /// `Some(slot)`: the CPU allocates temp memory into domain field
    /// `F_TMP0 + slot` right before this kernel and frees it after.
    temp: Option<usize>,
}

const fn k(name: &'static str, r0: usize, r1: usize, w: usize) -> KernelSpec {
    KernelSpec {
        name,
        reads: [r0, r1],
        write: w,
        temp: None,
    }
}

const fn kt(name: &'static str, r0: usize, r1: usize, w: usize, slot: usize) -> KernelSpec {
    KernelSpec {
        name,
        reads: [r0, r1],
        write: w,
        temp: Some(slot),
    }
}

/// The ~30 kernels of one LULESH timestep, named after the real phases.
/// `CalcVolumeForceForElems` and `CalcFBHourglassForceForElems` are the
/// two kernels that need temporary storage (§II-C).
const KERNELS: &[KernelSpec] = &[
    k("InitStressTermsForElems", 14, 15, 39),
    kt("CalcVolumeForceForElems", 18, 19, 9, 0),
    kt("CalcFBHourglassForceForElems", 12, 9, 10, 1),
    k("SumElemStressesToNodeForces", 9, 10, 11),
    k("CalcForceForNodes", 9, 10, 11),
    k("CalcAccelerationForNodes", 9, 12, 6),
    k("CalcAccelYForNodes", 10, 12, 7),
    k("CalcAccelZForNodes", 11, 12, 8),
    k("CalcVelocityForNodes", 6, 3, 3),
    k("CalcVelYForNodes", 7, 4, 4),
    k("CalcVelZForNodes", 8, 5, 5),
    k("CalcPositionForNodes", 3, 0, 0),
    k("CalcPosYForNodes", 4, 1, 1),
    k("CalcPosZForNodes", 5, 2, 2),
    k("CalcKinematicsForElems", 0, 1, 20),
    k("CalcElemVolumeDerivative", 20, 19, 21),
    k("CalcLagrangeElements", 21, 18, 22),
    k("CalcShapeFunctionDerivs", 2, 20, 23),
    k("CalcMonotonicQGradientsForElems", 29, 30, 31),
    k("CalcMonotonicQGradX", 32, 33, 34),
    k("CalcMonotonicQRegionForElems", 31, 34, 16),
    k("CalcQForElems", 16, 17, 15),
    k("EvalCopyPOld", 14, 13, 35),
    k("EvalCopyQOld", 15, 13, 36),
    k("CalcCompression", 18, 20, 37),
    k("CalcCompressionHalfStep", 37, 21, 38),
    k("CalcEnergyForElems", 35, 36, 13),
    k("CalcPressureForElems", 13, 37, 14),
    k("CalcSoundSpeedForElems", 14, 13, 24),
    k("UpdateVolumesForElems", 20, 22, 18),
];

/// The four remedies of Fig. 6 plus the unmodified baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuleshVariant {
    /// Managed memory without hints: the version that page-faults.
    Baseline,
    /// `cudaMemAdviseSetReadMostly` on the domain object (the paper's
    /// one-line change).
    ReadMostly,
    /// `cudaMemAdviseSetPreferredLocation(cpu)` on the domain object.
    PreferredCpu,
    /// `cudaMemAdviseSetAccessedBy` GPU and CPU on the domain object.
    AccessedBy,
    /// Two identical domain objects, each exclusively accessed by one
    /// processor; temp pointers passed outside the domain object.
    DupDomain,
}

impl LuleshVariant {
    pub const ALL: [LuleshVariant; 5] = [
        LuleshVariant::Baseline,
        LuleshVariant::ReadMostly,
        LuleshVariant::PreferredCpu,
        LuleshVariant::AccessedBy,
        LuleshVariant::DupDomain,
    ];

    pub fn label(self) -> &'static str {
        match self {
            LuleshVariant::Baseline => "baseline",
            LuleshVariant::ReadMostly => "read-mostly",
            LuleshVariant::PreferredCpu => "preferred-cpu",
            LuleshVariant::AccessedBy => "accessed-by",
            LuleshVariant::DupDomain => "dup-domain",
        }
    }
}

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct LuleshConfig {
    /// Edge length of the cubic mesh (the paper sweeps 8–48, plus 96 for
    /// the overhead table).
    pub size: usize,
    /// Timesteps to run.
    pub steps: usize,
}

impl LuleshConfig {
    pub fn new(size: usize, steps: usize) -> Self {
        LuleshConfig { size, steps }
    }

    /// Number of elements (size³).
    pub fn elems(&self) -> usize {
        self.size * self.size * self.size
    }

    /// Number of nodes ((size+1)³).
    pub fn nodes(&self) -> usize {
        (self.size + 1).pow(3)
    }
}

/// A set-up LULESH problem, ready to step.
pub struct Lulesh {
    pub cfg: LuleshConfig,
    pub variant: LuleshVariant,
    /// The domain object (the CPU's copy under `DupDomain`).
    pub dom: TPtr<u64>,
    /// GPU-side duplicate domain (== `dom` except under `DupDomain`).
    pub dom_gpu: TPtr<u64>,
    /// Data arrays, same order as [`ARRAYS`].
    pub arrays: Vec<TPtr<f64>>,
    /// The GPU-written, CPU-read time-constraint reduction target.
    pub dt_red: TPtr<f64>,
    cycle: usize,
}

impl Lulesh {
    /// Allocate and initialize the problem on `m`.
    pub fn setup(m: &mut Machine, cfg: LuleshConfig, variant: LuleshVariant) -> Self {
        let dom = m.alloc_managed::<u64>(DOM_FIELDS);
        let dom_gpu = if variant == LuleshVariant::DupDomain {
            m.alloc_managed::<u64>(DOM_FIELDS)
        } else {
            dom
        };
        let dt_red = m.alloc_managed::<f64>(2);

        let mut arrays = Vec::with_capacity(ARRAYS.len());
        for &(_, space) in ARRAYS {
            let len = match space {
                Space::Node | Space::Cpu => cfg.nodes(),
                Space::Elem => cfg.elems(),
            };
            arrays.push(m.alloc_managed::<f64>(len));
        }

        // CPU initializes the domain object and all data (the paper's
        // "GPU utilizes data initialized by the CPU" in iteration 1).
        let ptrs: Vec<u64> = arrays.iter().map(|a| a.addr).collect();
        m.st_range(dom, 0, &ptrs);
        m.st(dom, F_TMP0, 0);
        m.st(dom, F_TMP1, 0);
        m.st(dom, F_NUMELEM, cfg.elems() as u64);
        m.st(dom, F_NUMNODE, cfg.nodes() as u64);
        m.st(dom, F_TIME, 0f64.to_bits());
        m.st(dom, F_DT, (1e-7f64).to_bits());
        m.st(dom, F_CYCLE, 0);
        if variant == LuleshVariant::DupDomain {
            let fields = m.ld_range(dom, 0, DOM_FIELDS);
            m.st_range(dom_gpu, 0, &fields);
        }
        for (ai, a) in arrays.iter().enumerate() {
            let vals: Vec<f64> = (0..a.len)
                .map(|i| 1.0 + (ai as f64) * 1e-3 + (i % 97) as f64 * 1e-4)
                .collect();
            m.st_range(*a, 0, &vals);
        }

        // Apply the variant's advice to the shared domain page.
        match variant {
            LuleshVariant::Baseline | LuleshVariant::DupDomain => {}
            LuleshVariant::ReadMostly => m.mem_advise(dom, MemAdvise::SetReadMostly),
            LuleshVariant::PreferredCpu => {
                m.mem_advise(dom, MemAdvise::SetPreferredLocation(Device::Cpu));
            }
            LuleshVariant::AccessedBy => {
                m.mem_advise(dom, MemAdvise::SetAccessedBy(Device::GPU0));
                m.mem_advise(dom, MemAdvise::SetAccessedBy(Device::Cpu));
            }
        }

        Lulesh {
            cfg,
            variant,
            dom,
            dom_gpu,
            arrays,
            dt_red,
            cycle: 0,
        }
    }

    /// `(address, "(dom)->name", elem_size)` descriptions for the tracer —
    /// what the expansion of `#pragma xpl diagnostic trcPrn(cout; domain)`
    /// produces (50 named allocations in the paper's run).
    pub fn names(&self) -> Vec<(Addr, String)> {
        let mut v = vec![(self.dom.addr, "dom".to_string())];
        if self.variant == LuleshVariant::DupDomain {
            v.push((self.dom_gpu.addr, "dom_gpu".to_string()));
        }
        for (i, &(name, _)) in ARRAYS.iter().enumerate() {
            v.push((self.arrays[i].addr, format!("(dom)->{name}")));
        }
        v.push((self.dt_red.addr, "dt_red".to_string()));
        v
    }

    /// Length of the array behind field `fi` (the CPU knows this from the
    /// domain scalars).
    fn field_len(&self, fi: usize) -> usize {
        match ARRAYS[fi].1 {
            Space::Node | Space::Cpu => self.cfg.nodes(),
            Space::Elem => self.cfg.elems(),
        }
    }

    /// Run one timestep.
    pub fn step(&mut self, m: &mut Machine) {
        let dom = self.dom;
        let dom_gpu = self.dom_gpu;
        let pass_temp_outside = self.variant == LuleshVariant::DupDomain;
        let temp_len = (self.cfg.elems() / 8).max(16);

        for spec in KERNELS {
            // --- CPU-side launch setup: the RAJA lambda captures read
            // the domain object on the host.
            let _n_elem = m.ld(dom, F_NUMELEM);
            let _dt = f64::from_bits(m.ld(dom, F_DT));
            let r0 = TPtr::<f64>::new(m.ld(dom, spec.reads[0]), self.field_len(spec.reads[0]));
            let r1 = TPtr::<f64>::new(m.ld(dom, spec.reads[1]), self.field_len(spec.reads[1]));
            let w = TPtr::<f64>::new(m.ld(dom, spec.write), self.field_len(spec.write));

            // --- Temp storage: CPU allocates managed memory and stores
            // the pointer into the (shared!) domain object.
            let temp = spec.temp.map(|slot| {
                let t = m.alloc_managed::<f64>(temp_len);
                if !pass_temp_outside {
                    m.st(dom, F_TMP0 + slot, t.addr);
                }
                (slot, t)
            });

            let n = w.len;
            let fields = [spec.reads[0], spec.reads[1], spec.write];
            let temp_slot = temp.as_ref().map(|(slot, t)| (*slot, *t));
            m.launch(spec.name, n, |i, m| {
                if i == 0 {
                    // The kernel dereferences the domain object on the
                    // GPU (pointer loads, served from L2 afterwards).
                    for f in fields {
                        let _ = m.ld(dom_gpu, f);
                    }
                    if let Some((slot, t)) = temp_slot {
                        if pass_temp_outside {
                            let _ = t; // pointer arrived as a kernel argument
                        } else {
                            let _ = m.ld(dom_gpu, F_TMP0 + slot);
                        }
                    }
                }
                // Hydro kernels gather several neighbours per element.
                let a = m.ld(r0, i % r0.len);
                let a2 = m.ld(r0, (i + 1) % r0.len);
                let b = m.ld(r1, (i + 1) % r1.len);
                let b2 = m.ld(r1, (i + 17) % r1.len);
                let old = m.ld(w, i);
                let mut val = 0.5 * old + 0.2 * a + 0.1 * a2 + 0.15 * b + 0.05 * b2 + 1e-6;
                if let Some((_, t)) = temp_slot {
                    // The temp kernels stage intermediate values.
                    let ti = i % t.len;
                    m.st(t, ti, val);
                    val = m.ld(t, ti) * 0.999;
                }
                m.st(w, i, val);
                m.compute(24);
            });

            // --- Free the temp storage right after the kernel.
            if let Some((slot, t)) = temp {
                m.free(t);
                if !pass_temp_outside {
                    m.st(dom, F_TMP0 + slot, 0);
                }
            }
        }

        // --- Time-constraint reduction: GPU writes, CPU reads.
        let dt_red = self.dt_red;
        let e_ptr = TPtr::<f64>::new(m.ld(dom, 13), self.cfg.elems());
        m.launch(
            "CalcTimeConstraintsForElems",
            64.min(self.cfg.elems()),
            |i, m| {
                let v = m.ld(e_ptr, i);
                m.compute(4);
                if i == 0 {
                    m.st(dt_red, 0, 1e-7 + v * 1e-20);
                    m.st(dt_red, 1, 2e-7 + v * 1e-20);
                }
            },
        );
        let dtcourant = m.ld(dt_red, 0);
        let dthydro = m.ld(dt_red, 1);
        let newdt = dtcourant.min(dthydro);
        m.st(dom, F_DT, newdt.to_bits());
        let t = f64::from_bits(m.ld(dom, F_TIME)) + newdt;
        m.st(dom, F_TIME, t.to_bits());
        m.rmw(dom, F_CYCLE, |c: u64| c + 1);

        // --- Host-side work on the CPU-only arrays (disjoint data set).
        for (fi, &(_, space)) in ARRAYS.iter().enumerate() {
            if space == Space::Cpu {
                let a = self.arrays[fi];
                let stride = 16;
                let mut i = self.cycle % stride;
                while i < a.len {
                    let v = m.ld(a, i);
                    m.st(a, i, v * 1.0000001);
                    i += stride;
                }
            }
        }

        self.cycle += 1;
    }

    /// Run `steps` timesteps, invoking `per_step(step_index, machine)`
    /// after each (where harnesses place their diagnostics, like the
    /// paper's `#pragma xpl diagnostic` at the end of each timestep).
    pub fn run(
        &mut self,
        m: &mut Machine,
        steps: usize,
        mut per_step: impl FnMut(usize, &mut Machine),
    ) {
        for s in 0..steps {
            self.step(m);
            per_step(s, m);
        }
    }

    /// Verification scalar: the "energy" field plus final simulated time.
    /// Identical across variants by construction (uses `peek`, which does
    /// not perturb the trace or the clock).
    pub fn check(&self, m: &mut Machine) -> f64 {
        let e = self.arrays[13];
        let mut sum = 0.0;
        for i in 0..e.len {
            sum += m.peek(e, i);
        }
        sum + f64::from_bits(m.peek(self.dom, F_TIME)) * 1e9
    }
}

/// Set up, run, and summarize one LULESH configuration.
pub fn run_lulesh(m: &mut Machine, cfg: LuleshConfig, variant: LuleshVariant) -> RunResult {
    let mut l = Lulesh::setup(m, cfg, variant);
    // One untimed warmup step: real LULESH runs thousands of steps, so
    // first-touch migration of the data arrays is not part of the
    // steady-state per-step cost the paper's speedups compare.
    l.run(m, 1, |_, _| {});
    m.reset_metrics();
    l.run(m, cfg.steps, |_, _| {});
    let elapsed_ns = m.elapsed_ns();
    let check = l.check(m);
    RunResult {
        name: format!("lulesh/{}", variant.label()),
        elapsed_ns,
        stats: m.stats.clone(),
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::{intel_pascal, power9_volta};

    fn small() -> LuleshConfig {
        LuleshConfig::new(4, 3)
    }

    #[test]
    fn config_counts() {
        let c = LuleshConfig::new(8, 1);
        assert_eq!(c.elems(), 512);
        assert_eq!(c.nodes(), 729);
    }

    #[test]
    fn domain_matches_paper_size() {
        assert_eq!(DOM_FIELDS * 8, 3736);
    }

    #[test]
    fn kernel_table_has_thirty_kernels_two_with_temps() {
        assert_eq!(KERNELS.len(), 30);
        assert_eq!(KERNELS.iter().filter(|k| k.temp.is_some()).count(), 2);
    }

    #[test]
    fn all_variants_compute_identical_results() {
        let mut checks = Vec::new();
        for v in LuleshVariant::ALL {
            let mut m = Machine::new(intel_pascal());
            let r = run_lulesh(&mut m, small(), v);
            checks.push(r.check);
        }
        for c in &checks[1..] {
            assert_eq!(*c, checks[0], "variant diverged: {checks:?}");
        }
    }

    #[test]
    fn baseline_ping_pongs_the_domain_on_pcie() {
        let mut m = Machine::new(intel_pascal());
        let r = run_lulesh(&mut m, small(), LuleshVariant::Baseline);
        // Dozens of kernels × steps, each bouncing the domain page.
        assert!(
            r.stats.migrations() > 50,
            "expected ping-pong, got {} migrations",
            r.stats.migrations()
        );
    }

    #[test]
    fn read_mostly_beats_baseline_on_pcie() {
        let mut mb = Machine::new(intel_pascal());
        let base = run_lulesh(&mut mb, small(), LuleshVariant::Baseline);
        let mut mr = Machine::new(intel_pascal());
        let rm = run_lulesh(&mut mr, small(), LuleshVariant::ReadMostly);
        assert!(
            base.elapsed_ns > 1.5 * rm.elapsed_ns,
            "baseline {} vs read-mostly {}",
            base.elapsed_ns,
            rm.elapsed_ns
        );
        assert!(rm.stats.faults() < base.stats.faults());
    }

    #[test]
    fn dup_domain_beats_baseline_on_pcie() {
        let mut mb = Machine::new(intel_pascal());
        let base = run_lulesh(&mut mb, small(), LuleshVariant::Baseline);
        let mut md = Machine::new(intel_pascal());
        let dup = run_lulesh(&mut md, small(), LuleshVariant::DupDomain);
        assert!(base.elapsed_ns > 1.5 * dup.elapsed_ns);
    }

    #[test]
    fn remedies_do_little_on_nvlink() {
        // The paper's IBM+Volta result: duplication ~1.03x, ReadMostly
        // ~0.8x (slower).
        let mut mb = Machine::new(power9_volta());
        let base = run_lulesh(&mut mb, small(), LuleshVariant::Baseline);
        let mut md = Machine::new(power9_volta());
        let dup = run_lulesh(&mut md, small(), LuleshVariant::DupDomain);
        let speedup = base.elapsed_ns / dup.elapsed_ns;
        assert!(
            (0.8..1.4).contains(&speedup),
            "NVLink dup speedup should be marginal, got {speedup:.2}"
        );
    }

    #[test]
    fn names_cover_dom_and_arrays() {
        let mut m = Machine::new(intel_pascal());
        let l = Lulesh::setup(&mut m, small(), LuleshVariant::Baseline);
        let names = l.names();
        assert_eq!(names.len(), 1 + ARRAYS.len() + 1); // dom + arrays + dt_red
        assert!(names.iter().any(|(_, n)| n == "(dom)->m_p"));
    }

    #[test]
    fn step_advances_cycle_and_time() {
        let mut m = Machine::new(intel_pascal());
        let mut l = Lulesh::setup(&mut m, small(), LuleshVariant::Baseline);
        l.step(&mut m);
        l.step(&mut m);
        assert_eq!(m.peek(l.dom, F_CYCLE), 2);
        assert!(f64::from_bits(m.peek(l.dom, F_TIME)) > 0.0);
    }
}
