//! Common result type returned by every workload run.

use hetsim::Stats;

/// Outcome of one workload execution on the simulator.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload + variant label, e.g. `lulesh/baseline`.
    pub name: String,
    /// Simulated wall time in nanoseconds.
    pub elapsed_ns: f64,
    /// Simulator counters accumulated over the run.
    pub stats: Stats,
    /// Verification scalar (energy / score / checksum). Equal across
    /// variants of the same workload and configuration.
    pub check: f64,
}

impl RunResult {
    /// Simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed_ns * 1e-9
    }

    /// Simulated milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed_ns * 1e-6
    }

    /// Speedup of `self` treated as baseline against `other`.
    pub fn speedup_of(&self, other: &RunResult) -> f64 {
        self.elapsed_ns / other.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let r = RunResult {
            name: "x".into(),
            elapsed_ns: 2_500_000.0,
            stats: Stats::default(),
            check: 0.0,
        };
        assert!((r.millis() - 2.5).abs() < 1e-12);
        assert!((r.seconds() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn speedup_ratio() {
        let base = RunResult {
            name: "base".into(),
            elapsed_ns: 300.0,
            stats: Stats::default(),
            check: 0.0,
        };
        let opt = RunResult {
            name: "opt".into(),
            elapsed_ns: 100.0,
            stats: Stats::default(),
            check: 0.0,
        };
        assert!((base.speedup_of(&opt) - 3.0).abs() < 1e-12);
    }
}
