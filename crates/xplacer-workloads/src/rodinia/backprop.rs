//! Rodinia Backprop: one forward/backward pass of a two-layer perceptron.
//!
//! Table II findings reproduced structurally:
//!
//! * `output_hidden_cuda` is allocated but never used;
//! * `input_cuda` is copied CPU→GPU and then back CPU←GPU although the
//!   GPU never modifies it.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;
use crate::rodinia::Lcg;

/// Hidden layer width (16 in the original benchmark).
pub const HID: usize = 16;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct BackpropConfig {
    /// Input layer size (the paper's Table III uses 640K; harnesses
    /// scale this down).
    pub input_n: usize,
}

impl BackpropConfig {
    pub fn new(input_n: usize) -> Self {
        assert!(input_n >= HID && input_n.is_multiple_of(HID));
        BackpropConfig { input_n }
    }

    fn blocks(&self) -> usize {
        self.input_n / HID
    }
}

/// A set-up Backprop problem.
pub struct Backprop {
    pub cfg: BackpropConfig,
    pub input_host: TPtr<f32>,
    pub weights_host: TPtr<f32>,
    /// Device copy of the inputs — read-only on the GPU, yet copied back.
    pub input_cuda: TPtr<f32>,
    /// Allocated and never touched (the Table II finding).
    pub output_hidden_cuda: TPtr<f32>,
    pub input_hidden_cuda: TPtr<f32>,
    pub hidden_partial_sum: TPtr<f32>,
    /// CPU-side reduction of the partial sums, filled by `run`.
    hidden_acc: Vec<f32>,
}

impl Backprop {
    pub fn setup(m: &mut Machine, cfg: BackpropConfig) -> Self {
        let n = cfg.input_n;
        let mut rng = Lcg::new(11);
        let input_host = m.alloc_host::<f32>(n);
        let weights_host = m.alloc_host::<f32>((n + 1) * HID);
        for i in 0..n {
            m.poke(input_host, i, rng.next_f64() as f32);
        }
        for i in 0..(n + 1) * HID {
            m.poke(weights_host, i, (rng.next_f64() - 0.5) as f32);
        }
        let input_cuda = m.alloc_device::<f32>(n);
        let output_hidden_cuda = m.alloc_device::<f32>(HID + 1);
        let input_hidden_cuda = m.alloc_device::<f32>((n + 1) * HID);
        let hidden_partial_sum = m.alloc_device::<f32>(cfg.blocks() * HID);
        // The original kernel builds each partial sum in shared memory and
        // stores it once; this port accumulates in place, so the buffer
        // must start zeroed rather than rely on fresh pages reading as 0.
        for i in 0..cfg.blocks() * HID {
            m.poke(hidden_partial_sum, i, 0.0f32);
        }
        Backprop {
            cfg,
            input_host,
            weights_host,
            input_cuda,
            output_hidden_cuda,
            input_hidden_cuda,
            hidden_partial_sum,
            hidden_acc: Vec::new(),
        }
    }

    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.input_cuda.addr, "input_cuda".into()),
            (self.output_hidden_cuda.addr, "output_hidden_cuda".into()),
            (self.input_hidden_cuda.addr, "input_hidden_cuda".into()),
            (self.hidden_partial_sum.addr, "hidden_partial_sum".into()),
        ]
    }

    /// One training pass, transfers included — structured exactly like
    /// the original `bpnn_train_cuda`.
    pub fn run(&mut self, m: &mut Machine) {
        let n = self.cfg.input_n;
        let blocks = self.cfg.blocks();
        let (input_cuda, weights_cuda, partial) = (
            self.input_cuda,
            self.input_hidden_cuda,
            self.hidden_partial_sum,
        );

        // Transfers in (including the input that will make a round trip).
        m.memcpy(input_cuda, self.input_host, n, CopyKind::HostToDevice);
        m.memcpy(
            weights_cuda,
            self.weights_host,
            (n + 1) * HID,
            CopyKind::HostToDevice,
        );

        // Forward kernel: per-block partial sums of w[i][h] * x[i].
        m.launch("bpnn_layerforward_CUDA", n, |t, m| {
            let b = t / HID;
            let x = m.ld(input_cuda, t);
            for h in 0..HID {
                let w = m.ld(weights_cuda, (t + 1) * HID + h);
                let acc = m.ld(partial, b * HID + h);
                m.st(partial, b * HID + h, acc + w * x);
                m.compute(2);
            }
        });

        // Weight-adjust kernel (backward pass): reads inputs, updates
        // weights in place.
        m.launch("bpnn_adjust_weights_cuda", n, |t, m| {
            let x = m.ld(input_cuda, t);
            for h in 0..HID {
                let idx = (t + 1) * HID + h;
                let w = m.ld(weights_cuda, idx);
                m.st(weights_cuda, idx, w + 0.3 * 0.01 * x);
                m.compute(3);
            }
        });

        // Transfers out: partial sums, updated weights — and the *input*,
        // which the GPU never wrote (the unnecessary transfer).
        let partial_host = m.alloc_host::<f32>(blocks * HID);
        m.memcpy(partial_host, partial, blocks * HID, CopyKind::DeviceToHost);
        m.memcpy(
            self.weights_host,
            weights_cuda,
            (n + 1) * HID,
            CopyKind::DeviceToHost,
        );
        m.memcpy(self.input_host, input_cuda, n, CopyKind::DeviceToHost);

        // CPU reduces the partial sums into hidden-unit activations.
        let mut acc = [0f32; HID];
        for b in 0..blocks {
            let row = m.ld_range(partial_host, b * HID, HID);
            for (a, &v) in acc.iter_mut().zip(&row) {
                *a += v;
            }
        }
        self.hidden_acc = acc.to_vec();
        m.free(partial_host);
    }

    /// Verification scalar: sum of hidden activations.
    pub fn check(&self) -> f64 {
        self.hidden_acc.iter().map(|&v| v as f64).sum()
    }
}

/// Plain-Rust reference of the forward pass for verification.
pub fn cpu_reference(cfg: BackpropConfig) -> f64 {
    let n = cfg.input_n;
    let mut rng = Lcg::new(11);
    let input: Vec<f32> = (0..n).map(|_| rng.next_f64() as f32).collect();
    let weights: Vec<f32> = (0..(n + 1) * HID)
        .map(|_| (rng.next_f64() - 0.5) as f32)
        .collect();
    let mut acc = [0f32; HID];
    for (t, &x) in input.iter().enumerate() {
        for (h, a) in acc.iter_mut().enumerate() {
            *a += weights[(t + 1) * HID + h] * x;
        }
    }
    acc.iter().map(|&v| v as f64).sum()
}

/// Set up, run, and summarize one Backprop execution.
pub fn run_backprop(m: &mut Machine, cfg: BackpropConfig) -> RunResult {
    let mut b = Backprop::setup(m, cfg);
    m.reset_metrics();
    b.run(m);
    let elapsed_ns = m.elapsed_ns();
    RunResult {
        name: "backprop".into(),
        elapsed_ns,
        stats: m.stats.clone(),
        check: b.check(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn matches_cpu_reference() {
        let cfg = BackpropConfig::new(256);
        let mut m = Machine::new(intel_pascal());
        let r = run_backprop(&mut m, cfg);
        let want = cpu_reference(cfg);
        // Summation order matches exactly (block-major on both sides).
        assert!((r.check - want).abs() < 1e-3, "got {} want {want}", r.check);
    }

    #[test]
    fn output_hidden_never_touched() {
        let cfg = BackpropConfig::new(128);
        let mut m = Machine::new(intel_pascal());
        let mut b = Backprop::setup(&mut m, cfg);
        let before = m.stats.clone();
        b.run(&mut m);
        let _ = before;
        // The buffer's backing bytes are still all zero and no access
        // path ever targeted it (would have panicked on CPU access).
        for i in 0..HID + 1 {
            assert_eq!(m.peek(b.output_hidden_cuda, i), 0.0);
        }
    }

    #[test]
    fn input_round_trips_unmodified() {
        let cfg = BackpropConfig::new(128);
        let mut m = Machine::new(intel_pascal());
        let mut b = Backprop::setup(&mut m, cfg);
        let orig: Vec<f32> = (0..cfg.input_n).map(|i| m.peek(b.input_host, i)).collect();
        b.run(&mut m);
        for (i, &o) in orig.iter().enumerate() {
            assert_eq!(m.peek(b.input_host, i), o);
        }
        // Two H2D and three D2H copies happened.
        assert_eq!(m.stats.memcpy_h2d, 2);
        assert_eq!(m.stats.memcpy_d2h, 3);
    }

    #[test]
    #[should_panic(expected = "input_n")]
    fn config_requires_multiple_of_hid() {
        let _ = BackpropConfig::new(100);
    }
}
