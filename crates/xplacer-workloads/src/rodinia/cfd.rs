//! Rodinia CFD (euler3d), reduced to a 1-D finite-volume Euler solver
//! with the same data-flow structure (paper §IV-C — "no possible
//! improvements identified").
//!
//! All device buffers are transferred once, fully consumed by every
//! iteration's kernels, updated in place, and the final state is
//! transferred back and used — nothing for XPlacer to flag.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct CfdConfig {
    /// Number of finite-volume cells.
    pub cells: usize,
    /// Solver iterations.
    pub iterations: usize,
}

impl CfdConfig {
    pub fn new(cells: usize, iterations: usize) -> Self {
        assert!(cells >= 4);
        CfdConfig { cells, iterations }
    }
}

/// Initial condition: a Sod-style density/energy step.
fn initial_state(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rho = vec![0.125f64; n];
    let mut mom = vec![0f64; n];
    let mut ene = vec![0.25f64; n];
    for i in 0..n / 2 {
        rho[i] = 1.0;
        ene[i] = 2.5;
    }
    mom.iter_mut().for_each(|v| *v = 0.0);
    (rho, mom, ene)
}

/// Plain-Rust reference of the full solve.
pub fn cpu_reference(cfg: CfdConfig) -> f64 {
    let n = cfg.cells;
    let (mut rho, mut mom, mut ene) = initial_state(n);
    let mut frho = vec![0f64; n];
    let mut fmom = vec![0f64; n];
    let mut fene = vec![0f64; n];
    for _ in 0..cfg.iterations {
        for i in 0..n {
            let l = if i == 0 { 0 } else { i - 1 };
            let r = if i == n - 1 { n - 1 } else { i + 1 };
            frho[i] = 0.5 * (rho[r] - 2.0 * rho[i] + rho[l]) + 0.1 * (mom[l] - mom[r]);
            fmom[i] = 0.5 * (mom[r] - 2.0 * mom[i] + mom[l]) + 0.1 * (rho[l] - rho[r]);
            fene[i] = 0.5 * (ene[r] - 2.0 * ene[i] + ene[l]) + 0.05 * (mom[l] - mom[r]);
        }
        for i in 0..n {
            rho[i] += 0.2 * frho[i];
            mom[i] += 0.2 * fmom[i];
            ene[i] += 0.2 * fene[i];
        }
    }
    rho.iter().sum::<f64>() + ene.iter().sum::<f64>()
}

/// A set-up CFD problem.
pub struct Cfd {
    pub cfg: CfdConfig,
    pub rho: TPtr<f64>,
    pub mom: TPtr<f64>,
    pub ene: TPtr<f64>,
    pub flux_rho: TPtr<f64>,
    pub flux_mom: TPtr<f64>,
    pub flux_ene: TPtr<f64>,
    pub host_out: TPtr<f64>,
    check: f64,
}

impl Cfd {
    pub fn setup(m: &mut Machine, cfg: CfdConfig) -> Self {
        let n = cfg.cells;
        let (r0, m0, e0) = initial_state(n);
        let host_in = m.alloc_host::<f64>(3 * n);
        for i in 0..n {
            m.poke(host_in, i, r0[i]);
            m.poke(host_in, n + i, m0[i]);
            m.poke(host_in, 2 * n + i, e0[i]);
        }
        let rho = m.alloc_device::<f64>(n);
        let mom = m.alloc_device::<f64>(n);
        let ene = m.alloc_device::<f64>(n);
        let flux_rho = m.alloc_device::<f64>(n);
        let flux_mom = m.alloc_device::<f64>(n);
        let flux_ene = m.alloc_device::<f64>(n);
        let host_out = m.alloc_host::<f64>(3 * n);
        m.memcpy(rho, host_in.slice(0, n), n, CopyKind::HostToDevice);
        m.memcpy(mom, host_in.slice(n, n), n, CopyKind::HostToDevice);
        m.memcpy(ene, host_in.slice(2 * n, n), n, CopyKind::HostToDevice);
        m.free(host_in);
        Cfd {
            cfg,
            rho,
            mom,
            ene,
            flux_rho,
            flux_mom,
            flux_ene,
            host_out,
            check: 0.0,
        }
    }

    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.rho.addr, "variables.density".into()),
            (self.mom.addr, "variables.momentum".into()),
            (self.ene.addr, "variables.energy".into()),
            (self.flux_rho.addr, "fluxes.density".into()),
            (self.flux_mom.addr, "fluxes.momentum".into()),
            (self.flux_ene.addr, "fluxes.energy".into()),
        ]
    }

    pub fn run(&mut self, m: &mut Machine) {
        let cfg = self.cfg;
        let n = cfg.cells;
        let (rho, mom, ene) = (self.rho, self.mom, self.ene);
        let (frho, fmom, fene) = (self.flux_rho, self.flux_mom, self.flux_ene);

        for _ in 0..cfg.iterations {
            m.launch("compute_flux", n, |i, m| {
                let l = if i == 0 { 0 } else { i - 1 };
                let r = if i == n - 1 { n - 1 } else { i + 1 };
                let (rl, ri, rr) = (m.ld(rho, l), m.ld(rho, i), m.ld(rho, r));
                let (ml, mi, mr) = (m.ld(mom, l), m.ld(mom, i), m.ld(mom, r));
                let (el, ei, er) = (m.ld(ene, l), m.ld(ene, i), m.ld(ene, r));
                m.st(frho, i, 0.5 * (rr - 2.0 * ri + rl) + 0.1 * (ml - mr));
                m.st(fmom, i, 0.5 * (mr - 2.0 * mi + ml) + 0.1 * (rl - rr));
                m.st(fene, i, 0.5 * (er - 2.0 * ei + el) + 0.05 * (ml - mr));
                m.compute(15);
            });
            m.launch("time_step", n, |i, m| {
                let v = m.ld(rho, i) + 0.2 * m.ld(frho, i);
                m.st(rho, i, v);
                let v = m.ld(mom, i) + 0.2 * m.ld(fmom, i);
                m.st(mom, i, v);
                let v = m.ld(ene, i) + 0.2 * m.ld(fene, i);
                m.st(ene, i, v);
                m.compute(6);
            });
        }

        // Transfer the final state back and consume it on the CPU.
        m.memcpy(self.host_out.slice(0, n), rho, n, CopyKind::DeviceToHost);
        m.memcpy(self.host_out.slice(n, n), mom, n, CopyKind::DeviceToHost);
        m.memcpy(
            self.host_out.slice(2 * n, n),
            ene,
            n,
            CopyKind::DeviceToHost,
        );
        let rho_out = m.ld_range(self.host_out, 0, n);
        let ene_out = m.ld_range(self.host_out, 2 * n, n);
        let mut s = 0.0;
        for i in 0..n {
            s += rho_out[i] + ene_out[i];
        }
        // The momentum component is also read (fully consumed output).
        let _ = m.ld_range(self.host_out, n, n);
        self.check = s;
    }

    pub fn check(&self) -> f64 {
        self.check
    }
}

/// Set up, run, and summarize one CFD execution.
pub fn run_cfd(m: &mut Machine, cfg: CfdConfig) -> RunResult {
    let mut c = Cfd::setup(m, cfg);
    m.reset_metrics();
    c.run(m);
    let elapsed_ns = m.elapsed_ns();
    RunResult {
        name: "cfd".into(),
        elapsed_ns,
        stats: m.stats.clone(),
        check: c.check(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn matches_cpu_reference() {
        let cfg = CfdConfig::new(128, 10);
        let mut m = Machine::new(intel_pascal());
        let r = run_cfd(&mut m, cfg);
        let want = cpu_reference(cfg);
        assert!((r.check - want).abs() < 1e-9, "{} vs {want}", r.check);
    }

    #[test]
    fn mass_is_conserved_in_the_interior() {
        // The diffusion flux sums to ~zero over the domain (reflecting
        // boundaries leak a little): total density stays near the initial
        // value.
        let cfg = CfdConfig::new(256, 20);
        let mut m = Machine::new(intel_pascal());
        let mut c = Cfd::setup(&mut m, cfg);
        c.run(&mut m);
        let n = cfg.cells;
        let mut mass = 0.0;
        for i in 0..n {
            mass += m.peek(c.host_out, i);
        }
        let initial = 0.125 * n as f64 + (1.0 - 0.125) * (n / 2) as f64;
        assert!(
            (mass - initial).abs() / initial < 0.05,
            "mass {mass} vs initial {initial}"
        );
    }

    #[test]
    fn structural_transfers() {
        let cfg = CfdConfig::new(64, 3);
        let mut m = Machine::new(intel_pascal());
        let r = run_cfd(&mut m, cfg);
        // H2D copies happen in setup (untimed); D2H of all three fields.
        assert_eq!(r.stats.memcpy_d2h, 3);
        assert_eq!(r.stats.kernel_launches as usize, 2 * cfg.iterations);
    }
}
