//! Rodinia Gaussian elimination (paper §IV-C).
//!
//! Table II finding reproduced structurally: the multiplier matrix
//! `m_cuda` is allocated on the CPU and transferred to the GPU, but the
//! `Fan1` kernel overwrites every transferred value before any use — the
//! initial transfer can be eliminated.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;
use crate::rodinia::Lcg;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct GaussianConfig {
    /// Matrix dimension (the paper's Table III uses 100 and 1000).
    pub n: usize,
}

impl GaussianConfig {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        GaussianConfig { n }
    }
}

/// Generate a diagonally dominant system so elimination is stable.
pub fn gen_system(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Lcg::new(seed);
    let mut a = vec![0f64; n * n];
    let mut b = vec![0f64; n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.next_f64() - 0.5;
                a[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        a[i * n + i] = row_sum + 1.0;
        b[i] = rng.next_f64() * 10.0;
    }
    (a, b)
}

/// Plain-Rust reference solver (same elimination order as the kernels).
pub fn cpu_reference(n: usize, seed: u64) -> Vec<f64> {
    let (mut a, mut b) = gen_system(n, seed);
    let mut mult = vec![0f64; n * n];
    for t in 0..n - 1 {
        for i in t + 1..n {
            mult[i * n + t] = a[i * n + t] / a[t * n + t];
        }
        for i in t + 1..n {
            for j in 0..n {
                a[i * n + j] -= mult[i * n + t] * a[t * n + j];
            }
            b[i] -= mult[i * n + t] * b[t];
        }
    }
    // Back substitution.
    let mut x = vec![0f64; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in i + 1..n {
            s -= a[i * n + j] * x[j];
        }
        x[i] = s / a[i * n + i];
    }
    x
}

/// A set-up Gaussian elimination problem.
pub struct Gaussian {
    pub cfg: GaussianConfig,
    pub a_host: TPtr<f64>,
    pub b_host: TPtr<f64>,
    pub m_host: TPtr<f64>,
    pub a_cuda: TPtr<f64>,
    pub b_cuda: TPtr<f64>,
    /// The multiplier matrix whose inbound transfer is unnecessary.
    pub m_cuda: TPtr<f64>,
    solution: Vec<f64>,
}

impl Gaussian {
    pub fn setup(m: &mut Machine, cfg: GaussianConfig) -> Self {
        let n = cfg.n;
        let (a, b) = gen_system(n, 23);
        let a_host = m.alloc_host::<f64>(n * n);
        let b_host = m.alloc_host::<f64>(n);
        let m_host = m.alloc_host::<f64>(n * n);
        for (i, &v) in a.iter().enumerate() {
            m.poke(a_host, i, v);
        }
        for (i, &v) in b.iter().enumerate() {
            m.poke(b_host, i, v);
        }
        // The original zeroes m on the host before transferring it.
        let a_cuda = m.alloc_device::<f64>(n * n);
        let b_cuda = m.alloc_device::<f64>(n);
        let m_cuda = m.alloc_device::<f64>(n * n);
        Gaussian {
            cfg,
            a_host,
            b_host,
            m_host,
            a_cuda,
            b_cuda,
            m_cuda,
            solution: Vec::new(),
        }
    }

    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.a_cuda.addr, "a_cuda".into()),
            (self.b_cuda.addr, "b_cuda".into()),
            (self.m_cuda.addr, "m_cuda".into()),
        ]
    }

    /// Forward elimination on the GPU + CPU back substitution.
    pub fn run(&mut self, m: &mut Machine) {
        let n = self.cfg.n;
        let (a_cuda, b_cuda, m_cuda) = (self.a_cuda, self.b_cuda, self.m_cuda);

        // Host zeroes m, then transfers everything in — including the
        // zeros the GPU will overwrite before reading (the finding).
        m.fill(self.m_host, 0, n * n, 0.0);
        m.memcpy(self.a_cuda, self.a_host, n * n, CopyKind::HostToDevice);
        m.memcpy(self.b_cuda, self.b_host, n, CopyKind::HostToDevice);
        m.memcpy(self.m_cuda, self.m_host, n * n, CopyKind::HostToDevice);

        for t in 0..n - 1 {
            // Fan1: compute the multiplier column — writes m_cuda without
            // ever reading the transferred zeros.
            m.launch("Fan1", n - t - 1, |k, m| {
                let i = t + 1 + k;
                let num = m.ld(a_cuda, i * n + t);
                let den = m.ld(a_cuda, t * n + t);
                m.st(m_cuda, i * n + t, num / den);
                m.compute(1);
            });
            // Fan2: eliminate below the pivot.
            m.launch("Fan2", (n - t - 1) * n, |k, m| {
                let i = t + 1 + k / n;
                let j = k % n;
                let mult = m.ld(m_cuda, i * n + t);
                let piv = m.ld(a_cuda, t * n + j);
                let cur = m.ld(a_cuda, i * n + j);
                m.st(a_cuda, i * n + j, cur - mult * piv);
                m.compute(2);
                if j == 0 {
                    let bp = m.ld(b_cuda, t);
                    let bi = m.ld(b_cuda, i);
                    m.st(b_cuda, i, bi - mult * bp);
                }
            });
        }

        // Transfer the triangular system back and back-substitute on the
        // CPU, exactly like the original.
        m.memcpy(self.a_host, a_cuda, n * n, CopyKind::DeviceToHost);
        m.memcpy(self.b_host, b_cuda, n, CopyKind::DeviceToHost);
        let mut x = vec![0f64; n];
        for i in (0..n).rev() {
            let mut s = m.ld(self.b_host, i);
            let row = m.ld_range(self.a_host, i * n + (i + 1), n - i - 1);
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= row[j - i - 1] * xj;
            }
            x[i] = s / m.ld(self.a_host, i * n + i);
            m.compute((n - i) as u64);
        }
        self.solution = x;
    }

    /// Verification scalar: sum of the solution vector.
    pub fn check(&self) -> f64 {
        self.solution.iter().sum()
    }

    /// The computed solution.
    pub fn solution(&self) -> &[f64] {
        &self.solution
    }
}

/// Set up, run, and summarize one Gaussian execution.
pub fn run_gaussian(m: &mut Machine, cfg: GaussianConfig) -> RunResult {
    let mut g = Gaussian::setup(m, cfg);
    m.reset_metrics();
    g.run(m);
    let elapsed_ns = m.elapsed_ns();
    RunResult {
        name: "gaussian".into(),
        elapsed_ns,
        stats: m.stats.clone(),
        check: g.check(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn solves_the_system() {
        let cfg = GaussianConfig::new(24);
        let mut m = Machine::new(intel_pascal());
        let mut g = Gaussian::setup(&mut m, cfg);
        g.run(&mut m);
        let want = cpu_reference(cfg.n, 23);
        for (i, (&got, &w)) in g.solution().iter().zip(&want).enumerate() {
            assert!((got - w).abs() < 1e-9, "x[{i}]: {got} vs {w}");
        }
    }

    #[test]
    fn solution_satisfies_original_system() {
        let cfg = GaussianConfig::new(16);
        let mut m = Machine::new(intel_pascal());
        let mut g = Gaussian::setup(&mut m, cfg);
        g.run(&mut m);
        let (a, b) = gen_system(cfg.n, 23);
        for i in 0..cfg.n {
            let lhs: f64 = (0..cfg.n).map(|j| a[i * cfg.n + j] * g.solution()[j]).sum();
            assert!((lhs - b[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", b[i]);
        }
    }

    #[test]
    fn diagonally_dominant_generation() {
        let (a, _) = gen_system(10, 5);
        for i in 0..10 {
            let off: f64 = (0..10)
                .filter(|&j| j != i)
                .map(|j| a[i * 10 + j].abs())
                .sum();
            assert!(a[i * 10 + i].abs() > off);
        }
    }

    #[test]
    fn transfers_match_original_structure() {
        let cfg = GaussianConfig::new(12);
        let mut m = Machine::new(intel_pascal());
        let r = run_gaussian(&mut m, cfg);
        assert_eq!(r.stats.memcpy_h2d, 3); // a, b, m
        assert_eq!(r.stats.memcpy_d2h, 2); // a, b
        assert_eq!(r.stats.kernel_launches as usize, 2 * (cfg.n - 1));
    }
}
