//! Rodinia LUD: in-place LU decomposition (paper §IV-C).
//!
//! Table II findings reproduced structurally:
//!
//! * the matrix is initialized on the CPU, transferred to the GPU,
//!   recomputed there, and transferred back — but the *first row is
//!   never updated* (U's row 0 equals A's row 0), so part of the
//!   outbound transfer is unnecessary;
//! * the GPU touches most of the matrix in early iterations and fewer
//!   and fewer locations as the decomposition progresses (the shrinking
//!   trailing submatrix) — visible as decreasing per-iteration density.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;
use crate::rodinia::Lcg;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct LudConfig {
    /// Matrix dimension.
    pub n: usize,
}

impl LudConfig {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        LudConfig { n }
    }
}

/// Generate a well-conditioned matrix (diagonally dominant).
pub fn gen_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Lcg::new(seed);
    let mut a = vec![0f64; n * n];
    for i in 0..n {
        let mut row = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.next_f64() - 0.5;
                a[i * n + j] = v;
                row += v.abs();
            }
        }
        a[i * n + i] = row + 1.0;
    }
    a
}

/// Plain-Rust in-place Doolittle LU, same update order as the kernels.
pub fn cpu_reference(n: usize, seed: u64) -> Vec<f64> {
    let mut a = gen_matrix(n, seed);
    for k in 0..n - 1 {
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
        }
        for i in k + 1..n {
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a
}

/// A set-up LUD problem.
pub struct Lud {
    pub cfg: LudConfig,
    pub m_host: TPtr<f64>,
    /// The device matrix (`m_d` in the original).
    pub m_d: TPtr<f64>,
    original: Vec<f64>,
}

impl Lud {
    pub fn setup(m: &mut Machine, cfg: LudConfig) -> Self {
        let n = cfg.n;
        let a = gen_matrix(n, 31);
        let m_host = m.alloc_host::<f64>(n * n);
        for (i, &v) in a.iter().enumerate() {
            m.poke(m_host, i, v);
        }
        let m_d = m.alloc_device::<f64>(n * n);
        Lud {
            cfg,
            m_host,
            m_d,
            original: a,
        }
    }

    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.m_d.addr, "m_d".into()),
            (self.m_host.addr, "m".into()),
        ]
    }

    /// Transfer in, decompose on the GPU, transfer out. `per_iter(k, m)`
    /// fires after each elimination step (for the shrinking-access-set
    /// analysis).
    pub fn run(&mut self, m: &mut Machine, mut per_iter: impl FnMut(usize, &mut Machine)) {
        let n = self.cfg.n;
        let m_d = self.m_d;
        m.memcpy(self.m_d, self.m_host, n * n, CopyKind::HostToDevice);

        for k in 0..n - 1 {
            // lud_perimeter: scale the k-th column below the diagonal.
            m.launch("lud_perimeter", n - k - 1, |t, m| {
                let i = k + 1 + t;
                let v = m.ld(m_d, i * n + k);
                let d = m.ld(m_d, k * n + k);
                m.st(m_d, i * n + k, v / d);
                m.compute(1);
            });
            // lud_internal: rank-1 update of the trailing submatrix.
            let w = n - k - 1;
            m.launch("lud_internal", w * w, |t, m| {
                let i = k + 1 + t / w;
                let j = k + 1 + t % w;
                let l = m.ld(m_d, i * n + k);
                let u = m.ld(m_d, k * n + j);
                let cur = m.ld(m_d, i * n + j);
                m.st(m_d, i * n + j, cur - l * u);
                m.compute(2);
            });
            per_iter(k, m);
        }

        // Transfer the whole factorized matrix back — including the
        // never-updated first row.
        m.memcpy(self.m_host, self.m_d, n * n, CopyKind::DeviceToHost);
    }

    /// Verification: reconstruct L*U and compare to the original matrix;
    /// returns the max absolute residual (small when correct).
    pub fn residual(&self, m: &mut Machine) -> f64 {
        let n = self.cfg.n;
        let mut lu = vec![0f64; n * n];
        for (i, v) in lu.iter_mut().enumerate() {
            *v = m.peek(self.m_host, i);
        }
        let mut worst: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    s += if k == i { u } else { l * u };
                }
                worst = worst.max((s - self.original[i * n + j]).abs());
            }
        }
        worst
    }

    /// Checksum of the factorized matrix.
    pub fn check(&self, m: &mut Machine) -> f64 {
        let n = self.cfg.n;
        let mut s = 0.0;
        for i in 0..n * n {
            s += m.peek(self.m_host, i);
        }
        s
    }
}

/// Set up, run, and summarize one LUD execution.
pub fn run_lud(m: &mut Machine, cfg: LudConfig) -> RunResult {
    let mut l = Lud::setup(m, cfg);
    m.reset_metrics();
    l.run(m, |_, _| {});
    let elapsed_ns = m.elapsed_ns();
    let check = l.check(m);
    RunResult {
        name: "lud".into(),
        elapsed_ns,
        stats: m.stats.clone(),
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn factorization_matches_reference() {
        let cfg = LudConfig::new(20);
        let mut m = Machine::new(intel_pascal());
        let mut l = Lud::setup(&mut m, cfg);
        l.run(&mut m, |_, _| {});
        let want = cpu_reference(cfg.n, 31);
        for (i, &w) in want.iter().enumerate() {
            let got = m.peek(l.m_host, i);
            assert!((got - w).abs() < 1e-12, "entry {i}");
        }
    }

    #[test]
    fn reconstruction_residual_is_small() {
        let cfg = LudConfig::new(16);
        let mut m = Machine::new(intel_pascal());
        let mut l = Lud::setup(&mut m, cfg);
        l.run(&mut m, |_, _| {});
        assert!(l.residual(&mut m) < 1e-9);
    }

    #[test]
    fn first_row_never_written_by_gpu() {
        let cfg = LudConfig::new(12);
        let mut m = Machine::new(intel_pascal());
        let mut l = Lud::setup(&mut m, cfg);
        let before: Vec<f64> = (0..cfg.n).map(|j| l.original[j]).collect();
        l.run(&mut m, |_, _| {});
        for (j, &b) in before.iter().enumerate() {
            assert_eq!(m.peek(l.m_host, j), b, "first-row column {j} changed");
        }
    }

    #[test]
    fn per_iteration_work_shrinks() {
        let cfg = LudConfig::new(16);
        let mut m = Machine::new(intel_pascal());
        let mut l = Lud::setup(&mut m, cfg);
        let mut writes_per_iter = Vec::new();
        let mut last = 0;
        l.run(&mut m, |_, m| {
            writes_per_iter.push(m.stats.gpu_writes - last);
            last = m.stats.gpu_writes;
        });
        // Strictly decreasing GPU write counts: the shrinking access set.
        for w in writes_per_iter.windows(2) {
            assert!(
                w[1] < w[0],
                "access set did not shrink: {writes_per_iter:?}"
            );
        }
    }
}
