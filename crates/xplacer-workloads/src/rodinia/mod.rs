//! Rodinia CUDA benchmark subset (paper §IV-C, Table II): Backprop, CFD,
//! Gaussian, LUD, NN, and Pathfinder, each ported with the allocation,
//! transfer, and kernel structure that XPlacer's findings hinge on.

pub mod backprop;
pub mod cfd;
pub mod gaussian;
pub mod lud;
pub mod nn;
pub mod pathfinder;

/// Small deterministic generator for benchmark inputs (xorshift64*).
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn lcg_bounded() {
        let mut g = Lcg::new(3);
        for _ in 0..100 {
            assert!(g.next_below(10) < 10);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Lcg::new(1).next_u64(), Lcg::new(2).next_u64());
    }
}
