//! Rodinia NN: nearest-neighbor search over geographic records
//! (paper §IV-C — "no possible improvements identified").
//!
//! Every transferred byte is consumed and every produced byte is
//! transferred back and used, so XPlacer's detectors stay silent.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;
use crate::rodinia::Lcg;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct NnConfig {
    /// Number of (lat, lng) records.
    pub records: usize,
    /// Query point.
    pub lat: f32,
    pub lng: f32,
}

impl NnConfig {
    pub fn new(records: usize) -> Self {
        NnConfig {
            records,
            lat: 30.0,
            lng: 90.0,
        }
    }
}

/// Deterministic record coordinates.
pub fn gen_records(n: usize, seed: u64) -> Vec<(f32, f32)> {
    let mut rng = Lcg::new(seed);
    (0..n)
        .map(|_| {
            (
                (rng.next_f64() * 180.0 - 90.0) as f32,
                (rng.next_f64() * 360.0 - 180.0) as f32,
            )
        })
        .collect()
}

/// Plain-Rust reference: index and distance of the nearest record.
pub fn cpu_reference(cfg: NnConfig, seed: u64) -> (usize, f32) {
    let recs = gen_records(cfg.records, seed);
    let mut best = (0usize, f32::MAX);
    for (i, &(la, ln)) in recs.iter().enumerate() {
        let d = ((la - cfg.lat) * (la - cfg.lat) + (ln - cfg.lng) * (ln - cfg.lng)).sqrt();
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// A set-up NN problem.
pub struct Nn {
    pub cfg: NnConfig,
    pub lat_host: TPtr<f32>,
    pub lng_host: TPtr<f32>,
    pub dist_host: TPtr<f32>,
    pub lat_cuda: TPtr<f32>,
    pub lng_cuda: TPtr<f32>,
    pub dist_cuda: TPtr<f32>,
    nearest: (usize, f32),
}

impl Nn {
    pub fn setup(m: &mut Machine, cfg: NnConfig) -> Self {
        let n = cfg.records;
        let recs = gen_records(n, 17);
        let lat_host = m.alloc_host::<f32>(n);
        let lng_host = m.alloc_host::<f32>(n);
        let dist_host = m.alloc_host::<f32>(n);
        for (i, &(la, ln)) in recs.iter().enumerate() {
            m.poke(lat_host, i, la);
            m.poke(lng_host, i, ln);
        }
        let lat_cuda = m.alloc_device::<f32>(n);
        let lng_cuda = m.alloc_device::<f32>(n);
        let dist_cuda = m.alloc_device::<f32>(n);
        Nn {
            cfg,
            lat_host,
            lng_host,
            dist_host,
            lat_cuda,
            lng_cuda,
            dist_cuda,
            nearest: (0, f32::MAX),
        }
    }

    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.lat_cuda.addr, "d_locations.lat".into()),
            (self.lng_cuda.addr, "d_locations.lng".into()),
            (self.dist_cuda.addr, "d_distances".into()),
        ]
    }

    pub fn run(&mut self, m: &mut Machine) {
        let n = self.cfg.records;
        let (lat_cuda, lng_cuda, dist_cuda) = (self.lat_cuda, self.lng_cuda, self.dist_cuda);
        let (qlat, qlng) = (self.cfg.lat, self.cfg.lng);

        m.memcpy(lat_cuda, self.lat_host, n, CopyKind::HostToDevice);
        m.memcpy(lng_cuda, self.lng_host, n, CopyKind::HostToDevice);

        m.launch("euclid", n, |i, m| {
            let la = m.ld(lat_cuda, i);
            let ln = m.ld(lng_cuda, i);
            let d = ((la - qlat) * (la - qlat) + (ln - qlng) * (ln - qlng)).sqrt();
            m.st(dist_cuda, i, d);
            m.compute(6);
        });

        m.memcpy(self.dist_host, dist_cuda, n, CopyKind::DeviceToHost);

        // CPU scans for the nearest record (the original keeps a top-k
        // list; k = 1 here).
        let dists = m.ld_range(self.dist_host, 0, n);
        let mut best = (0usize, f32::MAX);
        for (i, &d) in dists.iter().enumerate() {
            if d < best.1 {
                best = (i, d);
            }
        }
        self.nearest = best;
    }

    /// Index and distance of the nearest record.
    pub fn nearest(&self) -> (usize, f32) {
        self.nearest
    }
}

/// Set up, run, and summarize one NN execution.
pub fn run_nn(m: &mut Machine, cfg: NnConfig) -> RunResult {
    let mut nn = Nn::setup(m, cfg);
    m.reset_metrics();
    nn.run(m);
    let elapsed_ns = m.elapsed_ns();
    RunResult {
        name: "nn".into(),
        elapsed_ns,
        stats: m.stats.clone(),
        check: nn.nearest().1 as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn finds_the_nearest_record() {
        let cfg = NnConfig::new(500);
        let mut m = Machine::new(intel_pascal());
        let mut nn = Nn::setup(&mut m, cfg);
        nn.run(&mut m);
        let (wi, wd) = cpu_reference(cfg, 17);
        let (gi, gd) = nn.nearest();
        assert_eq!(gi, wi);
        assert!((gd - wd).abs() < 1e-5);
    }

    #[test]
    fn all_transfers_consumed() {
        let cfg = NnConfig::new(256);
        let mut m = Machine::new(intel_pascal());
        let r = run_nn(&mut m, cfg);
        // Exactly the structural copies: 2 in, 1 out — and every GPU
        // word read or written.
        assert_eq!(r.stats.memcpy_h2d, 2);
        assert_eq!(r.stats.memcpy_d2h, 1);
        assert_eq!(r.stats.gpu_reads, 2 * 256);
        assert_eq!(r.stats.gpu_writes, 256);
    }
}
