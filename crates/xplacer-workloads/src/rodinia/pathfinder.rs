//! Rodinia Pathfinder: dynamic-programming shortest path over a grid
//! (paper §IV-C, Figs. 10 and 11).
//!
//! Structure kept from the original: the weight grid `wall` is produced
//! on the CPU, `gpuWall` (everything but row 0) is `cudaMalloc`ed and
//! copied to the device up front, and each kernel invocation processes
//! `pyramid_height` rows — so with `N = rows/pyramid` iterations, each
//! iteration reads only `100/N` % of `gpuWall` (the Table II finding).
//!
//! The optimized variant implements the paper's remedy: instead of
//! transferring `gpuWall` as a whole, each iteration's slice is copied on
//! a separate stream, overlapped with the previous iteration's kernel.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;
use crate::rodinia::Lcg;

/// Problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct PathfinderConfig {
    /// Grid columns (the paper uses 1M; harnesses scale this down).
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Rows processed per kernel invocation.
    pub pyramid: usize,
}

impl PathfinderConfig {
    pub fn new(cols: usize, rows: usize, pyramid: usize) -> Self {
        assert!(rows >= 2 && pyramid >= 1);
        PathfinderConfig {
            cols,
            rows,
            pyramid,
        }
    }

    /// Number of kernel iterations.
    pub fn iterations(&self) -> usize {
        (self.rows - 1).div_ceil(self.pyramid)
    }
}

/// Transfer strategy variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathfinderVariant {
    /// One bulk H2D copy of the whole `gpuWall` before the loop.
    Baseline,
    /// Chunked copies overlapped with computation (paper's optimization).
    Overlapped,
}

impl PathfinderVariant {
    pub fn label(self) -> &'static str {
        match self {
            PathfinderVariant::Baseline => "baseline",
            PathfinderVariant::Overlapped => "overlapped",
        }
    }
}

/// CPU reference: final DP row.
pub fn cpu_reference(wall: &[i32], rows: usize, cols: usize) -> Vec<i32> {
    let mut prev: Vec<i32> = wall[..cols].to_vec();
    let mut cur = vec![0i32; cols];
    for r in 1..rows {
        for c in 0..cols {
            let mut best = prev[c];
            if c > 0 {
                best = best.min(prev[c - 1]);
            }
            if c + 1 < cols {
                best = best.min(prev[c + 1]);
            }
            cur[c] = best + wall[r * cols + c];
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Deterministic weight grid.
pub fn gen_wall(rows: usize, cols: usize, seed: u64) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    (0..rows * cols)
        .map(|_| rng.next_below(10) as i32)
        .collect()
}

/// A set-up Pathfinder problem.
pub struct Pathfinder {
    pub cfg: PathfinderConfig,
    pub variant: PathfinderVariant,
    /// Host copy of the full grid.
    pub wall_host: TPtr<i32>,
    /// Device copy of rows `1..rows` (`cudaMalloc`).
    pub gpu_wall: TPtr<i32>,
    /// Device ping-pong result rows.
    pub gpu_result: [TPtr<i32>; 2],
    /// Host destination of the final row.
    pub result_host: TPtr<i32>,
}

impl Pathfinder {
    /// Allocate and populate the grids. The baseline performs its bulk
    /// H2D copy here; the overlapped variant defers copying to `run`.
    pub fn setup(m: &mut Machine, cfg: PathfinderConfig, variant: PathfinderVariant) -> Self {
        let wall = gen_wall(cfg.rows, cfg.cols, 7);
        let wall_host = m.alloc_host::<i32>(cfg.rows * cfg.cols);
        for (i, &w) in wall.iter().enumerate() {
            m.poke(wall_host, i, w); // input generation, not workload work
        }
        let gpu_wall = m.alloc_device::<i32>((cfg.rows - 1) * cfg.cols);
        let gpu_result = [
            m.alloc_device::<i32>(cfg.cols),
            m.alloc_device::<i32>(cfg.cols),
        ];
        let result_host = m.alloc_host::<i32>(cfg.cols);

        // Row 0 seeds the DP in gpu_result[0].
        m.memcpy(
            gpu_result[0],
            wall_host.slice(0, cfg.cols),
            cfg.cols,
            CopyKind::HostToDevice,
        );
        if variant == PathfinderVariant::Baseline {
            // "gpuWall is produced on the CPU and transferred to GPU
            // before the computation begins" — the whole thing at once.
            m.memcpy(
                gpu_wall,
                wall_host.slice(cfg.cols, (cfg.rows - 1) * cfg.cols),
                (cfg.rows - 1) * cfg.cols,
                CopyKind::HostToDevice,
            );
        }

        Pathfinder {
            cfg,
            variant,
            wall_host,
            gpu_wall,
            gpu_result,
            result_host,
        }
    }

    /// `(address, name)` pairs for the tracer.
    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.gpu_wall.addr, "gpuWall".into()),
            (self.gpu_result[0].addr, "gpuResult[0]".into()),
            (self.gpu_result[1].addr, "gpuResult[1]".into()),
            (self.wall_host.addr, "wall".into()),
        ]
    }

    /// Run the DP; `per_iter(iteration, machine)` fires after each kernel
    /// (the paper analyzes `gpuWall`'s access map per iteration, Fig. 10).
    pub fn run(&mut self, m: &mut Machine, mut per_iter: impl FnMut(usize, &mut Machine)) {
        let cfg = self.cfg;
        let gpu_wall = self.gpu_wall;
        let cols = cfg.cols;
        let overlapped = self.variant == PathfinderVariant::Overlapped;
        let (copy_s, comp_s) = (m.create_stream(), m.create_stream());

        // Overlapped: stage the first slice before the loop.
        let slice_rows = |it: usize| -> (usize, usize) {
            let start = it * cfg.pyramid;
            let len = cfg.pyramid.min(cfg.rows - 1 - start);
            (start, len)
        };
        if overlapped {
            let (start, len) = slice_rows(0);
            m.memcpy_async(
                gpu_wall.slice(start * cols, len * cols),
                self.wall_host.slice((1 + start) * cols, len * cols),
                len * cols,
                CopyKind::HostToDevice,
                copy_s,
            );
            m.sync_stream(copy_s);
        }

        let mut src = 0usize;
        for it in 0..cfg.iterations() {
            let (start, len) = slice_rows(it);
            let dst = 1 - src;
            let prev = self.gpu_result[src];
            let next = self.gpu_result[dst];

            if overlapped {
                // Prefetch the next slice while this kernel runs.
                if it + 1 < cfg.iterations() {
                    let (s2, l2) = slice_rows(it + 1);
                    m.memcpy_async(
                        gpu_wall.slice(s2 * cols, l2 * cols),
                        self.wall_host.slice((1 + s2) * cols, l2 * cols),
                        l2 * cols,
                        CopyKind::HostToDevice,
                        copy_s,
                    );
                }
                m.launch_async(comp_s, "dynproc_kernel", len * cols, |t, m| {
                    pathfinder_cell(m, prev, next, gpu_wall, start, cols, t);
                });
                // The next kernel needs both its input copy and this
                // kernel's output: per-iteration synchronization.
                m.sync_stream(comp_s);
                m.sync_stream(copy_s);
            } else {
                m.launch("dynproc_kernel", len * cols, |t, m| {
                    pathfinder_cell(m, prev, next, gpu_wall, start, cols, t);
                });
            }

            // Ping-pong only when the slice length was odd relative to the
            // per-row swap below (each row swaps once inside the thread
            // loop; the kernel leaves the result in `next` if `len` is
            // odd, in `prev` otherwise — we normalize by tracking rows).
            if len % 2 == 1 {
                src = dst;
            }
            per_iter(it, m);
        }

        // Transfer the final row back.
        m.memcpy(
            self.result_host,
            self.gpu_result[src],
            cols,
            CopyKind::DeviceToHost,
        );
    }

    /// Verification checksum of the final DP row.
    pub fn check(&self, m: &mut Machine) -> f64 {
        let mut sum = 0i64;
        for c in 0..self.cfg.cols {
            sum += m.peek(self.result_host, c) as i64;
        }
        sum as f64
    }
}

/// One cell update of the pyramid kernel. Thread ids are laid out
/// row-major (`t = r * cols + c`) so the simulator's sequential thread
/// execution respects the row dependency — matching the `__syncthreads()`
/// barrier between rows in the original kernel. Rows alternate between
/// the two result buffers (the original's shared-memory ping-pong).
fn pathfinder_cell(
    m: &mut Machine,
    prev: TPtr<i32>,
    next: TPtr<i32>,
    gpu_wall: TPtr<i32>,
    start_row: usize,
    cols: usize,
    t: usize,
) {
    let (r, c) = (t / cols, t % cols);
    let bufs = [prev, next];
    let src = bufs[r % 2];
    let dst = bufs[(r + 1) % 2];
    let mut best = m.ld(src, c);
    if c > 0 {
        best = best.min(m.ld(src, c - 1));
    }
    if c + 1 < cols {
        best = best.min(m.ld(src, c + 1));
    }
    let w = m.ld(gpu_wall, (start_row + r) * cols + c);
    m.st(dst, c, best + w);
    m.compute(4);
}

/// Set up, run, and summarize one Pathfinder configuration.
pub fn run_pathfinder(
    m: &mut Machine,
    cfg: PathfinderConfig,
    variant: PathfinderVariant,
) -> RunResult {
    let mut p = Pathfinder::setup(m, cfg, variant);
    if variant == PathfinderVariant::Baseline {
        // The bulk copy is part of the measured baseline; rebuild the
        // clock so both variants start timing at the same point (just
        // before any gpuWall transfer).
        // (setup already performed the copy with the clock running.)
    }
    m.reset_metrics();
    // Re-issue the baseline bulk copy inside the timed region.
    if variant == PathfinderVariant::Baseline {
        m.memcpy(
            p.gpu_wall,
            p.wall_host.slice(cfg.cols, (cfg.rows - 1) * cfg.cols),
            (cfg.rows - 1) * cfg.cols,
            CopyKind::HostToDevice,
        );
    }
    p.run(m, |_, _| {});
    let elapsed_ns = m.elapsed_ns();
    let check = p.check(m);
    RunResult {
        name: format!("pathfinder/{}", variant.label()),
        elapsed_ns,
        stats: m.stats.clone(),
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::{intel_pascal, power9_volta};

    fn small() -> PathfinderConfig {
        PathfinderConfig::new(64, 21, 5)
    }

    #[test]
    fn iterations_cover_all_rows() {
        assert_eq!(PathfinderConfig::new(10, 101, 20).iterations(), 5);
        assert_eq!(PathfinderConfig::new(10, 11, 5).iterations(), 2);
        assert_eq!(PathfinderConfig::new(10, 12, 5).iterations(), 3);
    }

    #[test]
    fn both_variants_match_cpu_reference() {
        let cfg = small();
        let wall = gen_wall(cfg.rows, cfg.cols, 7);
        let want: i64 = cpu_reference(&wall, cfg.rows, cfg.cols)
            .iter()
            .map(|&v| v as i64)
            .sum();
        for v in [PathfinderVariant::Baseline, PathfinderVariant::Overlapped] {
            let mut m = Machine::new(intel_pascal());
            let r = run_pathfinder(&mut m, cfg, v);
            assert_eq!(r.check as i64, want, "variant {v:?}");
        }
    }

    #[test]
    fn final_row_values_match_reference() {
        let cfg = PathfinderConfig::new(17, 9, 3);
        let wall = gen_wall(cfg.rows, cfg.cols, 7);
        let want = cpu_reference(&wall, cfg.rows, cfg.cols);
        let mut m = Machine::new(intel_pascal());
        let mut p = Pathfinder::setup(&mut m, cfg, PathfinderVariant::Baseline);
        p.run(&mut m, |_, _| {});
        for (c, &w) in want.iter().enumerate().take(cfg.cols) {
            assert_eq!(m.peek(p.result_host, c), w, "column {c}");
        }
    }

    #[test]
    fn overlap_wins_on_pcie() {
        // Fig. 11's medium-size PCIe result: the revised version is
        // faster because the copies hide behind kernels.
        let cfg = PathfinderConfig::new(20_000, 201, 20);
        let mut mb = Machine::new(intel_pascal());
        let base = run_pathfinder(&mut mb, cfg, PathfinderVariant::Baseline);
        let mut mo = Machine::new(intel_pascal());
        let ovl = run_pathfinder(&mut mo, cfg, PathfinderVariant::Overlapped);
        assert_eq!(base.check, ovl.check);
        assert!(
            base.elapsed_ns > ovl.elapsed_ns,
            "expected overlap win on PCIe: base {} vs ovl {}",
            base.elapsed_ns,
            ovl.elapsed_ns
        );
    }

    #[test]
    fn overlap_loses_on_nvlink() {
        // Fig. 11's IBM+Volta result: the transfer is already cheap, so
        // the per-chunk synchronization overhead dominates.
        let cfg = PathfinderConfig::new(20_000, 201, 20);
        let mut mb = Machine::new(power9_volta());
        let base = run_pathfinder(&mut mb, cfg, PathfinderVariant::Baseline);
        let mut mo = Machine::new(power9_volta());
        let ovl = run_pathfinder(&mut mo, cfg, PathfinderVariant::Overlapped);
        assert_eq!(base.check, ovl.check);
        assert!(
            ovl.elapsed_ns > base.elapsed_ns,
            "expected overlap loss on NVLink: base {} vs ovl {}",
            base.elapsed_ns,
            ovl.elapsed_ns
        );
    }

    #[test]
    fn per_iteration_callback_fires() {
        let cfg = small();
        let mut m = Machine::new(intel_pascal());
        let mut p = Pathfinder::setup(&mut m, cfg, PathfinderVariant::Baseline);
        let mut iters = Vec::new();
        p.run(&mut m, |it, _| iters.push(it));
        assert_eq!(iters, (0..cfg.iterations()).collect::<Vec<_>>());
    }
}
