//! Smith-Waterman local sequence alignment (paper §IV-B).
//!
//! The examined implementation allocates the score matrix `H` and the
//! path matrix `P` with `cudaMallocManaged`, copies the input strings
//! into managed storage, zeroes the matrices on the CPU, and sweeps
//! anti-diagonals with one GPU kernel per diagonal.
//!
//! XPlacer's two findings, reproduced here:
//!
//! * the CPU initializes the *entire* `H` matrix, but only the boundary
//!   zeroes are ever read (Fig. 7) — interior initialization is wasted;
//! * in row-major layout each diagonal's cells are a full row apart, so
//!   every iteration touches a page per row (Fig. 8) — once the resident
//!   set exceeds GPU memory this thrashes (input 46000).
//!
//! The optimized variant stores the matrices rotated by 45° (diagonal-
//! major), so each iteration reads/writes three contiguous segments, and
//! initializes boundary values on the fly.

use hetsim::{Addr, CopyKind, Machine, TPtr};

use crate::result::RunResult;

/// Alignment scoring (classic Smith-Waterman parameters).
pub const MATCH: i32 = 3;
pub const MISMATCH: i32 = -3;
pub const GAP: i32 = 2;

/// Problem configuration: input string lengths.
#[derive(Debug, Clone, Copy)]
pub struct SwConfig {
    /// Length of string `a` (matrix has `n+1` rows).
    pub n: usize,
    /// Length of string `b` (matrix has `m+1` columns).
    pub m: usize,
    /// RNG seed for the synthetic molecular strings.
    pub seed: u64,
}

impl SwConfig {
    pub fn new(n: usize, m: usize) -> Self {
        SwConfig { n, m, seed: 42 }
    }

    /// Square config, the paper's Fig. 9 shape.
    pub fn square(len: usize) -> Self {
        Self::new(len, len)
    }

    /// Total matrix cells including boundary.
    pub fn cells(&self) -> usize {
        (self.n + 1) * (self.m + 1)
    }

    /// Number of anti-diagonals (0 ..= n+m).
    pub fn diagonals(&self) -> usize {
        self.n + self.m + 1
    }
}

/// Matrix layout variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwVariant {
    /// Row-major `H`, CPU zero-initialization of everything.
    Baseline,
    /// Diagonal-major ("rotated by 45 degrees") `H`, boundary initialized
    /// on the fly.
    Rotated,
}

impl SwVariant {
    pub fn label(self) -> &'static str {
        match self {
            SwVariant::Baseline => "baseline",
            SwVariant::Rotated => "rotated",
        }
    }
}

/// Deterministic synthetic "molecular string" over 4 symbols.
pub fn gen_sequence(len: usize, seed: u64) -> Vec<i32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 4) as i32
        })
        .collect()
}

/// Plain-Rust reference: the maximum local alignment score. Used to
/// verify both simulated variants.
pub fn cpu_reference(a: &[i32], b: &[i32]) -> i32 {
    let (n, m) = (a.len(), b.len());
    let mut h = vec![0i32; (n + 1) * (m + 1)];
    let mut best = 0;
    for i in 1..=n {
        for j in 1..=m {
            let s = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let v = 0
                .max(h[(i - 1) * (m + 1) + (j - 1)] + s)
                .max(h[(i - 1) * (m + 1) + j] - GAP)
                .max(h[i * (m + 1) + (j - 1)] - GAP);
            h[i * (m + 1) + j] = v;
            best = best.max(v);
        }
    }
    best
}

/// A set-up Smith-Waterman problem.
pub struct SmithWaterman {
    pub cfg: SwConfig,
    pub variant: SwVariant,
    /// Managed copies of the input strings.
    pub a: TPtr<i32>,
    pub b: TPtr<i32>,
    /// Score matrix (row-major or diagonal-major depending on variant).
    pub h: TPtr<i32>,
    /// Path matrix, same layout as `h`.
    pub p: TPtr<i32>,
    /// Per-diagonal best scores (GPU-written, CPU-reduced at the end).
    pub best: TPtr<i32>,
    /// Start offset of each diagonal in the rotated layout.
    diag_off: Vec<usize>,
}

impl SmithWaterman {
    /// First row index on diagonal `d` (including boundary cells).
    fn dlo(&self, d: usize) -> usize {
        d.saturating_sub(self.cfg.m)
    }

    /// Number of cells on diagonal `d` (including boundary cells).
    pub fn dlen(&self, d: usize) -> usize {
        let hi = d.min(self.cfg.n);
        hi - self.dlo(d) + 1
    }

    /// Linear index of cell `(i, j)` in the active layout.
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        match self.variant {
            SwVariant::Baseline => i * (self.cfg.m + 1) + j,
            SwVariant::Rotated => {
                let d = i + j;
                self.diag_off[d] + (i - self.dlo(d))
            }
        }
    }

    /// Allocate, transfer inputs, and (for the baseline) zero-initialize.
    pub fn setup(m: &mut Machine, cfg: SwConfig, variant: SwVariant) -> Self {
        // Original storage on the host heap.
        let seq_a = gen_sequence(cfg.n, cfg.seed);
        let seq_b = gen_sequence(cfg.m, cfg.seed ^ 0xABCD);
        let a_host = m.alloc_host::<i32>(cfg.n);
        let b_host = m.alloc_host::<i32>(cfg.m);
        m.st_range(a_host, 0, &seq_a);
        m.st_range(b_host, 0, &seq_b);

        // Managed storage for the four data elements (§IV-B).
        let a = m.alloc_managed::<i32>(cfg.n);
        let b = m.alloc_managed::<i32>(cfg.m);
        let h = m.alloc_managed::<i32>(cfg.cells());
        let p = m.alloc_managed::<i32>(cfg.cells());
        let best = m.alloc_managed::<i32>(cfg.diagonals());
        m.memcpy(a, a_host, cfg.n, CopyKind::HostToHost);
        m.memcpy(b, b_host, cfg.m, CopyKind::HostToHost);
        m.free(a_host);
        m.free(b_host);

        // Diagonal offsets for the rotated layout (also used to map
        // indices when comparing the two variants).
        let mut diag_off = Vec::with_capacity(cfg.diagonals() + 1);
        let mut off = 0usize;
        for d in 0..cfg.diagonals() {
            diag_off.push(off);
            let lo = d.saturating_sub(cfg.m);
            let hi = d.min(cfg.n);
            off += hi - lo + 1;
        }
        debug_assert_eq!(off, cfg.cells());

        let sw = SmithWaterman {
            cfg,
            variant,
            a,
            b,
            h,
            p,
            best,
            diag_off,
        };

        if variant == SwVariant::Baseline {
            // The examined implementation "zeroes out the matrices" on
            // the CPU — the wasteful initialization of Fig. 7a.
            m.fill(h, 0, cfg.cells(), 0);
            m.fill(p, 0, cfg.cells(), 0);
        }
        // Rotated variant: boundary values initialized on the fly (the
        // allocation's zero fill stands in for values never written).

        sw
    }

    /// `(address, name)` pairs for the tracer.
    pub fn names(&self) -> Vec<(Addr, String)> {
        vec![
            (self.a.addr, "a".into()),
            (self.b.addr, "b".into()),
            (self.h.addr, "H".into()),
            (self.p.addr, "P".into()),
            (self.best.addr, "best".into()),
        ]
    }

    /// Run the wavefront; `per_iter(d, machine)` fires after each
    /// diagonal kernel (the paper's per-iteration analysis, Fig. 8).
    pub fn run(&mut self, m: &mut Machine, mut per_iter: impl FnMut(usize, &mut Machine)) {
        let cfg = self.cfg;
        let (a, b, h, p, best) = (self.a, self.b, self.h, self.p, self.best);
        let mm = cfg.m;
        for d in 2..cfg.diagonals() {
            // Interior cells of this diagonal: i in [max(1, d-m), min(n, d-1)].
            let lo = self.dlo(d).max(1);
            let hi = d.min(cfg.n).min(d - 1);
            if lo > hi {
                per_iter(d, m);
                continue;
            }
            let count = hi - lo + 1;
            // Precompute layout indices on the host side (cheap pointer
            // arithmetic in the real kernel).
            let sw_idx = |i: usize, j: usize| self.idx(i, j);
            let (i_cur, i_up, i_left, i_diag): (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) = {
                let mut c = Vec::with_capacity(count);
                let mut u = Vec::with_capacity(count);
                let mut l = Vec::with_capacity(count);
                let mut g = Vec::with_capacity(count);
                for t in 0..count {
                    let i = lo + t;
                    let j = d - i;
                    c.push(sw_idx(i, j));
                    u.push(sw_idx(i - 1, j));
                    l.push(sw_idx(i, j - 1));
                    g.push(sw_idx(i - 1, j - 1));
                }
                (c, u, l, g)
            };
            m.launch("sw_diagonal", count, |t, m| {
                let i = lo + t;
                let j = d - i;
                let ca = m.ld(a, i - 1);
                let cb = m.ld(b, j - 1);
                let s = if ca == cb { MATCH } else { MISMATCH };
                let hd = m.ld(h, i_diag[t]);
                let hu = m.ld(h, i_up[t]);
                let hl = m.ld(h, i_left[t]);
                let mut v = 0;
                let mut dir = 0;
                if hd + s > v {
                    v = hd + s;
                    dir = 1;
                }
                if hu - GAP > v {
                    v = hu - GAP;
                    dir = 2;
                }
                if hl - GAP > v {
                    v = hl - GAP;
                    dir = 3;
                }
                m.st(h, i_cur[t], v);
                m.st(p, i_cur[t], dir);
                m.compute(10);
                // Per-diagonal running maximum (thread 0 finalizes; the
                // real kernel uses an atomic reduction).
                if t == 0 {
                    let _ = mm;
                    m.st(best, d, 0);
                }
                let cur = m.ld(best, d);
                if v > cur {
                    m.st(best, d, v);
                }
            });
            per_iter(d, m);
        }
    }

    /// CPU-side reduction of the per-diagonal maxima: the final score.
    pub fn score(&self, m: &mut Machine) -> i32 {
        m.ld_range(self.best, 0, self.cfg.diagonals())
            .into_iter()
            .fold(0, i32::max)
    }

    /// Verification without perturbing the trace.
    pub fn peek_score(&self, m: &mut Machine) -> i32 {
        let mut s = 0;
        for d in 0..self.cfg.diagonals() {
            s = s.max(m.peek(self.best, d));
        }
        s
    }

    /// Read cell `(i, j)` of `H` without tracing (tests).
    pub fn peek_h(&self, m: &mut Machine, i: usize, j: usize) -> i32 {
        m.peek(self.h, self.idx(i, j))
    }
}

/// Set up, run, and summarize one Smith-Waterman configuration.
pub fn run_sw(m: &mut Machine, cfg: SwConfig, variant: SwVariant) -> RunResult {
    let mut sw = SmithWaterman::setup(m, cfg, variant);
    m.reset_metrics();
    sw.run(m, |_, _| {});
    let score = sw.score(m);
    let elapsed_ns = m.elapsed_ns();
    RunResult {
        name: format!("smith-waterman/{}", variant.label()),
        elapsed_ns,
        stats: m.stats.clone(),
        check: score as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform::intel_pascal;

    #[test]
    fn reference_scores_known_cases() {
        // Identical strings: n matches, score = n * MATCH.
        let s = vec![0, 1, 2, 3];
        assert_eq!(cpu_reference(&s, &s), 12);
        // Disjoint alphabets: nothing aligns.
        assert_eq!(cpu_reference(&[0, 0, 0], &[1, 1, 1]), 0);
        // Single match.
        assert_eq!(cpu_reference(&[0], &[0]), 3);
        assert_eq!(cpu_reference(&[], &[]), 0);
    }

    #[test]
    fn both_variants_match_cpu_reference() {
        let cfg = SwConfig::new(20, 10);
        let a = gen_sequence(cfg.n, cfg.seed);
        let b = gen_sequence(cfg.m, cfg.seed ^ 0xABCD);
        let want = cpu_reference(&a, &b);
        for v in [SwVariant::Baseline, SwVariant::Rotated] {
            let mut m = Machine::new(intel_pascal());
            let r = run_sw(&mut m, cfg, v);
            assert_eq!(r.check as i32, want, "variant {v:?}");
        }
    }

    #[test]
    fn variants_agree_on_square_inputs() {
        let cfg = SwConfig::square(37);
        let mut m1 = Machine::new(intel_pascal());
        let r1 = run_sw(&mut m1, cfg, SwVariant::Baseline);
        let mut m2 = Machine::new(intel_pascal());
        let r2 = run_sw(&mut m2, cfg, SwVariant::Rotated);
        assert_eq!(r1.check, r2.check);
    }

    #[test]
    fn rotated_layout_is_a_permutation() {
        let mut m = Machine::new(intel_pascal());
        let cfg = SwConfig::new(5, 3);
        let sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Rotated);
        let mut seen = vec![false; cfg.cells()];
        for i in 0..=cfg.n {
            for j in 0..=cfg.m {
                let k = sw.idx(i, j);
                assert!(!seen[k], "index collision at ({i},{j})");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rotated_diagonals_are_contiguous() {
        let mut m = Machine::new(intel_pascal());
        let cfg = SwConfig::new(6, 4);
        let sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Rotated);
        for d in 0..cfg.diagonals() {
            let lo = sw.dlo(d);
            let len = sw.dlen(d);
            for t in 1..len {
                let i = lo + t;
                assert_eq!(sw.idx(i, d - i), sw.idx(i - 1, d - i + 1) + 1);
            }
        }
    }

    #[test]
    fn h_matrix_values_match_reference_cellwise() {
        let cfg = SwConfig::new(8, 6);
        let a = gen_sequence(cfg.n, cfg.seed);
        let b = gen_sequence(cfg.m, cfg.seed ^ 0xABCD);
        // Reference full matrix.
        let mut href = vec![0i32; cfg.cells()];
        for i in 1..=cfg.n {
            for j in 1..=cfg.m {
                let s = if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
                let v = 0
                    .max(href[(i - 1) * (cfg.m + 1) + (j - 1)] + s)
                    .max(href[(i - 1) * (cfg.m + 1) + j] - GAP)
                    .max(href[i * (cfg.m + 1) + (j - 1)] - GAP);
                href[i * (cfg.m + 1) + j] = v;
            }
        }
        for variant in [SwVariant::Baseline, SwVariant::Rotated] {
            let mut m = Machine::new(intel_pascal());
            let mut sw = SmithWaterman::setup(&mut m, cfg, variant);
            sw.run(&mut m, |_, _| {});
            for i in 0..=cfg.n {
                for j in 0..=cfg.m {
                    assert_eq!(
                        sw.peek_h(&mut m, i, j),
                        href[i * (cfg.m + 1) + j],
                        "cell ({i},{j}) variant {variant:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oversubscription_makes_baseline_thrash() {
        let cfg = SwConfig::square(512);
        // Shrink GPU memory so the matrices (17 pages each) do not fit.
        let run = |variant| {
            let mut m = Machine::new(intel_pascal());
            m.set_gpu_mem_bytes(8 * 64 * 1024); // 8 pages
            run_sw(&mut m, cfg, variant)
        };
        let base = run(SwVariant::Baseline);
        let rot = run(SwVariant::Rotated);
        assert_eq!(base.check, rot.check);
        assert!(
            base.stats.evictions > 2 * rot.stats.evictions,
            "baseline evictions {} vs rotated {}",
            base.stats.evictions,
            rot.stats.evictions
        );
        assert!(base.elapsed_ns > rot.elapsed_ns);
    }

    #[test]
    fn sequences_are_deterministic() {
        assert_eq!(gen_sequence(16, 1), gen_sequence(16, 1));
        assert_ne!(gen_sequence(16, 1), gen_sequence(16, 2));
        assert!(gen_sequence(100, 7).iter().all(|&c| (0..4).contains(&c)));
    }
}
