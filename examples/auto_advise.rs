//! Auto-placement: let the advisor turn one traced run into concrete
//! `cudaMemAdvise` calls, then measure what they buy — closing the loop
//! the paper leaves to the developer ("provide appropriate memory access
//! hints for individual memory regions").
//!
//! ```sh
//! cargo run --release -p xplacer-examples --bin auto_advise
//! ```

use hetsim::{platform, Machine, Platform};
use xplacer_core::{attach_tracer, suggest_for, Suggestion};
use xplacer_examples::banner;
use xplacer_workloads::lulesh::{Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::register_names;

fn main() {
    let cfg = LuleshConfig::new(8, 4);

    // --- Step 1: one traced profiling run of the unmodified app. ---
    banner("profiling run (baseline LULESH, Intel+Pascal)");
    let suggestions = profile(&platform::intel_pascal(), cfg);
    println!("the advisor proposes {} placements:", suggestions.len());
    for s in suggestions.iter().take(6) {
        println!("  {s}");
    }
    if suggestions.len() > 6 {
        println!("  ... and {} more", suggestions.len() - 6);
    }

    // --- Step 2: re-run with platform-aware suggestions applied. ---
    banner("re-running with the advisor's placements applied");
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "platform", "baseline", "auto-advised", "speedup"
    );
    for pf in platform::all_platforms() {
        // The advisor re-profiles per platform: on the coherent NVLink
        // system it downgrades ReadMostly (the paper's 0.8x lesson).
        let suggestions = profile(&pf, cfg);
        let base = run_plain(&pf, cfg, &[]);
        let advised = run_plain(&pf, cfg, &suggestions);
        println!(
            "{:<14} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            pf.name,
            base / 1e6,
            advised / 1e6,
            base / advised
        );
    }
    println!(
        "\nOne profiling run recovers most of what the paper's hand-applied\n\
         remedies achieve on the PCIe systems — and on NVLink the advisor\n\
         knows to leave the duplication hint out (the paper's 0.8x lesson)."
    );
}

/// Trace one baseline run and collect placement suggestions.
fn profile(pf: &Platform, cfg: LuleshConfig) -> Vec<Suggestion> {
    let mut m = Machine::new(pf.clone());
    let tracer = attach_tracer(&mut m);
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    register_names(&tracer, &l.names());
    // Profile the steady state: drop the initialization epoch.
    l.step(&mut m);
    tracer.borrow_mut().end_epoch();
    l.step(&mut m);
    let t = tracer.borrow();
    suggest_for(&t.smt, pf)
}

/// One untraced run; `suggestions` carry addresses from the profiling
/// run's machine, so re-derive them by name against this machine's
/// allocations.
fn run_plain(pf: &Platform, cfg: LuleshConfig, suggestions: &[Suggestion]) -> f64 {
    let mut m = Machine::new(pf.clone());
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    // Map suggestion names onto this run's allocations.
    let names = l.names();
    for s in suggestions {
        if let xplacer_core::Action::Advise(a) = &s.action {
            if let Some((addr, _)) = names.iter().find(|(_, n)| *n == s.name) {
                let size = m.find_alloc(*addr).map(|al| al.size).unwrap_or(0);
                let _ = m.try_mem_advise(*addr, size, *a);
            }
        }
    }
    l.run(&mut m, 1, |_, _| {}); // warmup (first-touch)
    m.reset_metrics();
    l.run(&mut m, cfg.steps, |_, _| {});
    m.elapsed_ns()
}
