//! The full source-instrumentation pipeline on MiniCU programs:
//! parse → instrument → execute on the simulator → report anti-patterns.
//!
//! ```sh
//! cargo run --release -p xplacer-examples --bin find_antipatterns
//! ```

use hetsim::platform;
use xplacer_examples::banner;
use xplacer_interp::run_source;

/// Anti-pattern #1: alternating CPU/GPU access to managed memory.
const ALTERNATING: &str = r#"
__global__ void gpu_step(double* data, int n) {
    int i = threadIdx.x;
    if (i < n) { data[i] = data[i] * 0.5 + 1.0; }
}
int main() {
    double* data;
    cudaMallocManaged((void**)&data, 64 * sizeof(double));
    for (int i = 0; i < 64; i++) { data[i] = i; }
    for (int step = 0; step < 4; step++) {
        gpu_step<<<1, 64>>>(data, 64);
        for (int i = 0; i < 4; i++) { data[i] = data[i] + 0.001; }
    }
#pragma xpl diagnostic tracePrint(out; data)
    return 0;
}
"#;

/// Anti-pattern #2: low access density — the GPU only touches every
/// 16th element of what it was given.
const SPARSE: &str = r#"
__global__ void stride16(double* v, int n) {
    int i = threadIdx.x * 16;
    if (i < n) { v[i] = v[i] + 1.0; }
}
int main() {
    double* v;
    cudaMallocManaged((void**)&v, 1024 * sizeof(double));
    stride16<<<1, 64>>>(v, 1024);
#pragma xpl diagnostic tracePrint(out; v)
    return 0;
}
"#;

/// Anti-pattern #3: unnecessary transfers — half the buffer is copied to
/// the GPU and back without the GPU ever using it.
const WASTED_COPY: &str = r#"
__global__ void use_front_half(int* buf, int n) {
    int i = threadIdx.x;
    if (i < n / 2) { buf[i] = buf[i] * 2; }
}
int main() {
    int* host = (int*)malloc(256 * sizeof(int));
    int* dev;
    cudaMalloc((void**)&dev, 256 * sizeof(int));
    for (int i = 0; i < 256; i++) { host[i] = i; }
    cudaMemcpy(dev, host, 256 * sizeof(int), cudaMemcpyHostToDevice);
    use_front_half<<<1, 256>>>(dev, 256);
    cudaMemcpy(host, dev, 256 * sizeof(int), cudaMemcpyDeviceToHost);
#pragma xpl diagnostic tracePrint(out; dev)
    return 0;
}
"#;

fn main() {
    for (title, src) in [
        ("anti-pattern 1: alternating CPU/GPU accesses", ALTERNATING),
        ("anti-pattern 2: low access density", SPARSE),
        ("anti-pattern 3: unnecessary data transfers", WASTED_COPY),
    ] {
        banner(title);
        let (out, interp) =
            run_source(src, platform::intel_pascal(), true).unwrap_or_else(|e| panic!("{e}"));
        // The program's own tracePrint output (the paper's Fig. 4 format):
        print!("{}", out.stdout);
        // The structured findings collected at the diagnostic point:
        for report in &interp.reports {
            print!("{report}");
        }
        println!(
            "(simulated {:.1} us, {} faults, {} migrations)",
            out.elapsed_ns / 1e3,
            out.stats.faults(),
            out.stats.migrations()
        );
    }
}
