//! What the XPlacer instrumentation pass does to source code: the
//! paper's Table I / Fig. 2 examples, before and after.
//!
//! ```sh
//! cargo run --release -p xplacer-examples --bin instrument_source
//! ```

use xplacer_examples::banner;
use xplacer_instrument::instrument;
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;

const SOURCE: &str = r#"struct Pair { int* first; int* second; };

#pragma xpl replace cudaMallocManaged
int trcMallocManaged(void** p, size_t sz);

#pragma xpl replace kernel-launch
void traceKernelLaunch(int grd, int blk, char* kernel);

__global__ void touch(int* p, int n) {
    int i = threadIdx.x;
    if (i < n) { p[i] = p[i] + 1; }
}

int main() {
    int* p = new int(2);
    int x = *p;          // read        -> traceR
    *p = 3;              // write       -> traceW
    (*p)++;              // read-modify -> traceRW
    int* q = &p[1];      // address-of: not an access, elided
    size_t s = sizeof(*p); // unevaluated, elided
    Pair* a;
    cudaMallocManaged((void**)&a, sizeof(Pair));
    touch<<<1, 8>>>(p, 1);
#pragma xpl diagnostic tracePrint(out; a, p)
    return x;
}
"#;

fn main() {
    banner("original MiniCU source");
    print!("{SOURCE}");

    let prog = parse(SOURCE).expect("parses");
    let inst = instrument(&prog);

    banner("after the XPlacer pass");
    print!("{}", unparse(&inst.program));

    banner("replacements applied");
    let mut reps: Vec<_> = inst.replacements.iter().collect();
    reps.sort();
    for (from, to) in reps {
        println!("  {from:<20} -> {to}");
    }
    if let Some(k) = &inst.kernel_wrapper {
        println!("  {:<20} -> {k}", "kernel-launch");
    }
}
