//! Shared helpers for the runnable examples. The interesting code lives
//! in the sibling binaries:
//!
//! * `quickstart.rs` — tracing a tiny CPU+GPU program and reading the
//!   diagnostics (start here);
//! * `lulesh_tour.rs` — the paper's LULESH case study end to end:
//!   diagnose the ping-pong, apply remedies, compare platforms;
//! * `find_antipatterns.rs` — the source-instrumentation pipeline on a
//!   MiniCU program: instrument, run, report;
//! * `instrument_source.rs` — what the XPlacer pass does to source code.

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
