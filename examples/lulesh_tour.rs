//! LULESH tour: the paper's §IV-A case study end to end.
//!
//! Diagnoses the domain-object ping-pong in the baseline RAJA/CUDA
//! structure, shows the access maps, applies each of the four remedies,
//! and compares the PCIe and NVLink platforms.
//!
//! ```sh
//! cargo run --release -p xplacer-examples --bin lulesh_tour
//! ```

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, fill_ratio, MapKind};
use xplacer_core::{analyze, attach_tracer, AnalysisConfig};
use xplacer_examples::banner;
use xplacer_workloads::lulesh::{run_lulesh, Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::register_names;

fn main() {
    let cfg = LuleshConfig::new(8, 4);

    // --- Step 1: run the baseline traced and find the red flag. ---
    banner("tracing the baseline (Intel + Pascal)");
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = attach_tracer(&mut m);
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    register_names(&tracer, &l.names());

    let dom_addr = l.dom.addr;
    l.run(&mut m, cfg.steps, |step, _| {
        // The paper places `#pragma xpl diagnostic` at the end of each
        // timestep; we look at the steady state (after step 0).
        if step == cfg.steps - 1 {
            let t = tracer.borrow();
            let e = t.smt.lookup(dom_addr).expect("domain tracked");
            let cpu_w = extract(e, MapKind::CpuWrite);
            let overlap = extract(e, MapKind::GpuReadsCpuWrites);
            println!(
                "domain object in step {step}: CPU writes {:.0}% of it, \
                 GPU reads overlap CPU writes on {} words",
                fill_ratio(&cpu_w) * 100.0,
                overlap.iter().filter(|&&b| b).count()
            );
        }
        tracer.borrow_mut().end_epoch();
    });
    // Re-trace one step for the report (epochs were reset above).
    l.step(&mut m);
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    println!("\nfindings in one steady-state timestep:");
    for f in report.findings.iter().filter(|f| f.alloc_name() == "dom") {
        println!("  {f}\n  remedy: {}", f.remedy());
    }

    // --- Step 2: apply every remedy on every platform. ---
    banner("remedies vs platforms (speedup over baseline, size 8)");
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "variant", "Intel+Pascal", "Intel+Volta", "IBM+Volta"
    );
    let platforms = platform::all_platforms();
    let mut baselines = Vec::new();
    for pf in &platforms {
        let mut m = Machine::new(pf.clone());
        baselines.push(run_lulesh(&mut m, cfg, LuleshVariant::Baseline).elapsed_ns);
    }
    for v in [
        LuleshVariant::ReadMostly,
        LuleshVariant::PreferredCpu,
        LuleshVariant::AccessedBy,
        LuleshVariant::DupDomain,
    ] {
        print!("{:<16}", v.label());
        for (pi, pf) in platforms.iter().enumerate() {
            let mut m = Machine::new(pf.clone());
            let t = run_lulesh(&mut m, cfg, v).elapsed_ns;
            print!(" {:>13.2}x", baselines[pi] / t);
        }
        println!();
    }
    println!(
        "\nAs in the paper: big wins on the PCIe systems, marginal or negative\n\
         on the NVLink system — the CPU can read GPU-resident pages there\n\
         without migrating them, so the ping-pong was never expensive."
    );
}
