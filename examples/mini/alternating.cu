// A minimal program exhibiting the paper's anti-pattern #1: alternating
// CPU/GPU accesses to the same managed memory. Run with:
//   xplacer analyze examples/mini/alternating.cu

__global__ void gpu_step(double* data, int n) {
    int i = threadIdx.x;
    if (i < n) {
        data[i] = data[i] * 0.5 + 1.0;
    }
}

int main() {
    double* data;
    cudaMallocManaged((void**)&data, 64 * sizeof(double));
    for (int i = 0; i < 64; i++) {
        data[i] = i;
    }
    for (int step = 0; step < 4; step++) {
        gpu_step<<<1, 64>>>(data, 64);
        cudaDeviceSynchronize();
        // The CPU nudges a few values between kernels: the page bounces.
        for (int i = 0; i < 4; i++) {
            data[i] = data[i] + 0.001;
        }
    }
#pragma xpl diagnostic tracePrint(out; data)
    return 0;
}
