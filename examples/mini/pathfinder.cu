// Rodinia Pathfinder in MiniCU: cudaMalloc + one bulk transfer + pyramid
// kernels, each touching 1/N of gpuWall (the Table II finding). Run with:
//   xplacer analyze examples/mini/pathfinder.cu

__global__ void dynproc(int* gpuWall, int* src, int* dst,
                        int cols, int startRow) {
    int c = threadIdx.x + blockIdx.x * blockDim.x;
    if (c < cols) {
        int best = src[c];
        if (c > 0 && src[c - 1] < best) { best = src[c - 1]; }
        if (c + 1 < cols && src[c + 1] < best) { best = src[c + 1]; }
        dst[c] = best + gpuWall[startRow * cols + c];
    }
}

int main() {
    int cols = 64;
    int rows = 11; // 10 DP steps over gpuWall, pyramid height 2
    int pyramid = 2;

    int* wall = (int*)malloc(rows * cols * sizeof(int));
    for (int k = 0; k < rows * cols; k++) { wall[k] = (k * 13 + 5) % 10; }

    int* gpuWall;
    int* r0;
    int* r1;
    cudaMalloc((void**)&gpuWall, (rows - 1) * cols * sizeof(int));
    cudaMalloc((void**)&r0, cols * sizeof(int));
    cudaMalloc((void**)&r1, cols * sizeof(int));

    // Seed row + the whole wall in one bulk copy.
    cudaMemcpy(r0, wall, cols * sizeof(int), cudaMemcpyHostToDevice);
    int* wall1 = wall + cols;
    cudaMemcpy(gpuWall, wall1, (rows - 1) * cols * sizeof(int),
               cudaMemcpyHostToDevice);

    int src = 0;
    for (int row = 0; row < rows - 1; row++) {
        if (src == 0) {
            dynproc<<<1, cols>>>(gpuWall, r0, r1, cols, row);
        } else {
            dynproc<<<1, cols>>>(gpuWall, r1, r0, cols, row);
        }
        src = 1 - src;
        // the paper analyzes gpuWall after each pyramid of iterations
        if (row % pyramid == 1) {
#pragma xpl diagnostic tracePrint(out; gpuWall)
        }
    }
    cudaDeviceSynchronize();

    int* result = (int*)malloc(cols * sizeof(int));
    if (src == 0) {
        cudaMemcpy(result, r0, cols * sizeof(int), cudaMemcpyDeviceToHost);
    } else {
        cudaMemcpy(result, r1, cols * sizeof(int), cudaMemcpyDeviceToHost);
    }
    int sum = 0;
    for (int c = 0; c < cols; c++) { sum = sum + result[c]; }
    printf("checksum=%d\n", sum);
    return sum % 251;
}
