// Smith-Waterman in MiniCU: the paper's §IV-B workload as a source
// program — managed matrices, CPU zero-initialization (the wasteful
// init), and one GPU kernel per anti-diagonal. Run with:
//   xplacer analyze examples/mini/smith_waterman.cu

__global__ void sw_diag(int* H, int* P, int* a, int* b,
                        int* best, int n, int m, int d, int lo) {
    int t = threadIdx.x;
    int i = lo + t;
    int j = d - i;
    if (i >= 1 && i <= n && j >= 1 && j <= m) {
        int s = -3;
        if (a[i - 1] == b[j - 1]) { s = 3; }
        int w = m + 1;
        int hd = H[(i - 1) * w + (j - 1)] + s;
        int hu = H[(i - 1) * w + j] - 2;
        int hl = H[i * w + (j - 1)] - 2;
        int v = 0;
        int dir = 0;
        if (hd > v) { v = hd; dir = 1; }
        if (hu > v) { v = hu; dir = 2; }
        if (hl > v) { v = hl; dir = 3; }
        H[i * w + j] = v;
        P[i * w + j] = dir;
        if (v > best[d]) { best[d] = v; }
    }
}

int main() {
    int n = 24;
    int m = 16;
    int w = m + 1;
    int cells = (n + 1) * (m + 1);

    int* a;
    int* b;
    int* H;
    int* P;
    int* best;
    cudaMallocManaged((void**)&a, n * sizeof(int));
    cudaMallocManaged((void**)&b, m * sizeof(int));
    cudaMallocManaged((void**)&H, cells * sizeof(int));
    cudaMallocManaged((void**)&P, cells * sizeof(int));
    cudaMallocManaged((void**)&best, (n + m + 1) * sizeof(int));

    // Deterministic "molecular strings".
    for (int i = 0; i < n; i++) { a[i] = (i * 5 + 1) % 4; }
    for (int j = 0; j < m; j++) { b[j] = (j * 7 + 3) % 4; }

    // The examined implementation zeroes the whole matrices on the CPU —
    // XPlacer's Fig. 7 finding: only the boundary zeroes are ever read.
    for (int k = 0; k < cells; k++) { H[k] = 0; P[k] = 0; }

    // Anti-diagonal wavefront, one kernel per diagonal.
    for (int d = 2; d <= n + m; d++) {
        int lo = 1;
        if (d - m > 1) { lo = d - m; }
        int hi = n;
        if (d - 1 < n) { hi = d - 1; }
        int count = hi - lo + 1;
        if (count > 0) {
            sw_diag<<<1, count>>>(H, P, a, b, best, n, m, d, lo);
        }
    }
    cudaDeviceSynchronize();

    // CPU reduction of the per-diagonal maxima.
    int score = 0;
    for (int d = 0; d <= n + m; d++) {
        if (best[d] > score) { score = best[d]; }
    }
    printf("score=%d\n", score);
#pragma xpl diagnostic tracePrint(out; H, P, a, b)
    return score;
}
