// Anti-pattern #3: memory is copied to the GPU but half of it is never
// consumed, and the unmodified input is copied back. Run with:
//   xplacer analyze examples/mini/unnecessary_transfer.cu

__global__ void use_front_half(int* buf, int n) {
    int i = threadIdx.x;
    if (i < n / 2) {
        buf[i] = buf[i] * 2;
    }
}

int main() {
    int* host = (int*)malloc(256 * sizeof(int));
    int* dev;
    cudaMalloc((void**)&dev, 256 * sizeof(int));
    for (int i = 0; i < 256; i++) {
        host[i] = i;
    }
    cudaMemcpy(dev, host, 256 * sizeof(int), cudaMemcpyHostToDevice);
    use_front_half<<<1, 256>>>(dev, 256);
    cudaMemcpy(host, dev, 256 * sizeof(int), cudaMemcpyDeviceToHost);
#pragma xpl diagnostic tracePrint(out; dev)
    return host[0];
}
