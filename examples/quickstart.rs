//! Quickstart: trace a small CPU+GPU program and read XPlacer's
//! diagnostics.
//!
//! ```sh
//! cargo run --release -p xplacer-examples --bin quickstart
//! ```

use hetsim::{platform, Machine, MemAdvise};
use xplacer_core::{analyze, attach_tracer, format_fig4, summarize, AnalysisConfig};
use xplacer_examples::banner;

fn main() {
    // 1. Build a simulated heterogeneous node (Intel CPU + Pascal GPU
    //    over PCIe, one of the paper's three testbeds).
    let mut m = Machine::new(platform::intel_pascal());

    // 2. Attach the XPlacer tracer — the equivalent of compiling your
    //    code through the instrumentation pass.
    let tracer = attach_tracer(&mut m);

    // 3. Write an ordinary CUDA-style program against the machine.
    banner("running a program with an access anti-pattern");
    let data = m.alloc_managed::<f64>(1024);
    tracer.borrow_mut().name(data.addr, "data");

    let result = m.alloc_managed::<f64>(1024);
    tracer.borrow_mut().name(result.addr, "result");

    // CPU initializes the inputs...
    for i in 0..1024 {
        m.st(data, i, i as f64);
    }
    // ...the GPU reads them and produces results...
    for step in 0..3 {
        m.launch("scale", 1024, |i, m| {
            let v = m.ld(data, i);
            m.st(result, i, v * 0.99 + 0.01);
            m.compute(4);
        });
        // ...and the CPU nudges one input between kernels. This is the
        // paper's anti-pattern #1: the input page ping-pongs.
        m.st(data, step, step as f64);
    }

    // 4. Read the diagnostics (the paper's Fig. 4 output format).
    banner("diagnostic summary (tracePrint)");
    let summaries = summarize(&tracer.borrow().smt, true);
    print!("{}", format_fig4(&summaries));

    // 5. Run the anti-pattern detectors.
    banner("anti-pattern report");
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    print!("{report}");

    // 6. Apply the suggested remedy and compare simulated performance.
    banner("applying cudaMemAdviseSetReadMostly and re-running");
    let before = rerun(false);
    let after = rerun(true);
    println!("baseline:    {:>10.1} us simulated", before / 1e3);
    println!("read-mostly: {:>10.1} us simulated", after / 1e3);
    println!("speedup:     {:>10.2}x", before / after);
}

/// The same program, optionally with the remedy applied, untraced.
fn rerun(advise: bool) -> f64 {
    let mut m = Machine::new(platform::intel_pascal());
    let data = m.alloc_managed::<f64>(1024);
    let result = m.alloc_managed::<f64>(1024);
    if advise {
        m.mem_advise(data, MemAdvise::SetReadMostly);
    }
    for i in 0..1024 {
        m.st(data, i, i as f64);
    }
    for step in 0..3 {
        m.launch("scale", 1024, |i, m| {
            let v = m.ld(data, i);
            m.st(result, i, v * 0.99 + 0.01);
            m.compute(4);
        });
        m.st(data, step, step as f64);
    }
    m.elapsed_ns()
}
