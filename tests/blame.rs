//! Critical-path blame analysis (`xplacer blame`) and differential trace
//! diff (`xplacer diff`), end to end.
//!
//! Four properties pin the layer down:
//!
//! * **Conservation** — on every built-in workload, the blame rows
//!   partition the critical path *bit-exactly*: Σ `blame_ns` equals
//!   `path_ns` to the last ulp in any summation order, because blame is
//!   accounted in integer 1/1024-ns ticks.
//! * **Determinism** — identical runs produce byte-identical blame
//!   reports (human table, JSON, folded stacks) and diff reports.
//! * **Verdicts** — diffing a run against itself reports zero deltas and
//!   no regression; diffing a cheap run against an expensive one is a
//!   regression (the CI-gate signal behind `xplacer diff`'s exit code).
//! * **Validation** — every serialized workload trace round-trips through
//!   `EventTrace::parse`, which enforces per-stream timestamp monotonicity
//!   on the way in.
//!
//! The committed snapshots under `tests/golden/` are the byte-exact
//! contract of the blame/diff renderers; `blame_replay_lulesh.golden` is
//! additionally byte-compared by ci.sh against the real binary's
//! `xplacer blame --replay` output. Regenerate with `XPLACER_BLESS=1`.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use hetsim::{platform, EventLog, Machine};
use xplacer_conformance::snapshot::check_or_bless;
use xplacer_obs::crit_path::{BlameReport, TICKS_PER_NS};
use xplacer_obs::diff::{diff, RunDigest, Verdict, DEFAULT_THRESHOLD};
use xplacer_obs::events::{events_json, EventTrace};
use xplacer_obs::Json;
use xplacer_workloads::register_names;

type Tracer = Rc<RefCell<xplacer_core::Tracer>>;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}"))
}

/// Run `work` with tracer + event ring attached and serialize the stream
/// exactly as `--events-out` does. The returned trace is parsed back from
/// that text, so every trace used below has already passed the
/// stream-order validator.
fn record(
    name: &str,
    capacity: usize,
    work: impl FnOnce(&mut Machine, &Tracer),
) -> (EventTrace, String) {
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::with_capacity(capacity)));
    m.add_hook(log.clone());
    work(&mut m, &tracer);
    let elapsed = m.elapsed_ns();
    let allocs = xplacer_core::summarize(&tracer.borrow().smt, false);
    let text = events_json(&log.borrow(), name, elapsed, m.platform(), &allocs).to_string_pretty();
    let trace =
        EventTrace::parse(&text).unwrap_or_else(|e| panic!("{name}: exported trace rejected: {e}"));
    (trace, text)
}

fn digest(text: &str, source: &str) -> RunDigest {
    let doc = Json::parse(text).unwrap_or_else(|e| panic!("{source}: {e}"));
    RunDigest::from_json(&doc, source).unwrap_or_else(|e| panic!("{source}: {e}"))
}

const DEEP_RING: usize = 1 << 21;

fn lulesh_trace(variant: xplacer_workloads::lulesh::LuleshVariant) -> (EventTrace, String) {
    use xplacer_workloads::lulesh::{Lulesh, LuleshConfig};
    record("lulesh", DEEP_RING, |m, t| {
        let cfg = LuleshConfig::new(6, 4);
        let mut l = Lulesh::setup(m, cfg, variant);
        register_names(t, &l.names());
        l.run(m, cfg.steps, |_, _| {});
    })
}

/// All eight built-in workloads at integration-test sizes.
fn all_traces() -> Vec<EventTrace> {
    use xplacer_workloads as w;
    let mut traces = vec![lulesh_trace(w::lulesh::LuleshVariant::Baseline).0];
    traces.push(
        record("sw", DEEP_RING, |m, t| {
            use w::smith_waterman::*;
            let mut s = SmithWaterman::setup(m, SwConfig::square(64), SwVariant::Baseline);
            register_names(t, &s.names());
            s.run(m, |_, _| {});
        })
        .0,
    );
    traces.push(
        record("pathfinder", DEEP_RING, |m, t| {
            use w::rodinia::pathfinder::*;
            let mut p = Pathfinder::setup(
                m,
                PathfinderConfig::new(256, 51, 10),
                PathfinderVariant::Baseline,
            );
            register_names(t, &p.names());
            p.run(m, |_, _| {});
        })
        .0,
    );
    traces.push(
        record("backprop", DEEP_RING, |m, t| {
            use w::rodinia::backprop::*;
            let mut b = Backprop::setup(m, BackpropConfig::new(512));
            register_names(t, &b.names());
            b.run(m);
        })
        .0,
    );
    traces.push(
        record("gaussian", DEEP_RING, |m, t| {
            use w::rodinia::gaussian::*;
            let mut g = Gaussian::setup(m, GaussianConfig::new(24));
            register_names(t, &g.names());
            g.run(m);
        })
        .0,
    );
    traces.push(
        record("lud", DEEP_RING, |m, t| {
            use w::rodinia::lud::*;
            let mut l = Lud::setup(m, LudConfig::new(32));
            register_names(t, &l.names());
            l.run(m, |_, _| {});
        })
        .0,
    );
    traces.push(
        record("nn", DEEP_RING, |m, t| {
            use w::rodinia::nn::*;
            let mut n = Nn::setup(m, NnConfig::new(512));
            register_names(t, &n.names());
            n.run(m);
        })
        .0,
    );
    traces.push(
        record("cfd", DEEP_RING, |m, t| {
            use w::rodinia::cfd::*;
            let mut c = Cfd::setup(m, CfdConfig::new(256, 4));
            register_names(t, &c.names());
            c.run(m);
        })
        .0,
    );
    traces
}

/// The exact pipeline ci.sh drives through the real binary: `xplacer demo
/// lulesh --events-out` (default event ring, demo-sized config, final
/// check read included) followed by `xplacer blame --replay`.
fn demo_style_lulesh_trace() -> EventTrace {
    use xplacer_workloads::lulesh::{Lulesh, LuleshConfig, LuleshVariant};
    record("lulesh", EventLog::DEFAULT_CAPACITY, |m, t| {
        let cfg = LuleshConfig::new(8, 3);
        let mut l = Lulesh::setup(m, cfg, LuleshVariant::Baseline);
        register_names(t, &l.names());
        l.run(m, cfg.steps, |_, _| {});
        let _ = l.check(m);
    })
    .0
}

// ----------------------------------------------------------------------
// Conservation
// ----------------------------------------------------------------------

#[test]
fn blame_conserves_the_critical_path_bit_exactly_on_every_workload() {
    for trace in all_traces() {
        let r = BlameReport::build(&trace);
        assert_eq!(
            r.path_ticks,
            (trace.elapsed_ns * TICKS_PER_NS).round() as u64,
            "{}: path_ticks is not elapsed on the tick grid",
            trace.workload
        );
        assert!(
            (r.path_ns - trace.elapsed_ns).abs() * TICKS_PER_NS <= 0.5 + 1e-9,
            "{}: path_ns {} drifted from elapsed {}",
            trace.workload,
            r.path_ns,
            trace.elapsed_ns
        );
        let ticks: u64 = r.rows.iter().map(|row| row.blame_ticks).sum();
        assert_eq!(
            ticks, r.path_ticks,
            "{}: blame ticks do not partition the path",
            trace.workload
        );
        // Bit-exact in nanoseconds too, independent of summation order:
        // every blame_ns is ticks/1024, an exact binary fraction.
        let forward: f64 = r.rows.iter().map(|row| row.blame_ns).sum();
        let reverse: f64 = r.rows.iter().rev().map(|row| row.blame_ns).sum();
        assert_eq!(
            forward.to_bits(),
            r.path_ns.to_bits(),
            "{}: Σ blame_ns != path_ns bit-exactly",
            trace.workload
        );
        assert_eq!(
            reverse.to_bits(),
            r.path_ns.to_bits(),
            "{}: conservation must not depend on summation order",
            trace.workload
        );
        assert!(
            !r.rows.is_empty() && r.rows[0].blame_ticks > 0,
            "{}: a non-empty run must produce blame",
            trace.workload
        );
        // Rows are ranked largest-first; what-if bounds never exceed the
        // path and the residual is exactly path - savable.
        assert!(r
            .rows
            .windows(2)
            .all(|w| w[0].blame_ticks >= w[1].blame_ticks));
        for wi in &r.what_if {
            assert!(
                wi.savable_ticks <= r.path_ticks,
                "{}: what-if for {} exceeds the whole path",
                trace.workload,
                wi.label
            );
            assert_eq!(
                wi.path_if_fixed_ns.to_bits(),
                (r.path_ns - wi.savable_ns).to_bits(),
                "{}: what-if residual path is not path - savable",
                trace.workload
            );
        }
    }
}

// ----------------------------------------------------------------------
// Determinism
// ----------------------------------------------------------------------

#[test]
fn blame_and_diff_reports_are_byte_deterministic() {
    use xplacer_workloads::lulesh::LuleshVariant;
    let (a, ta) = lulesh_trace(LuleshVariant::Baseline);
    let (b, tb) = lulesh_trace(LuleshVariant::Baseline);
    assert_eq!(ta, tb, "serialized event traces diverged");
    let (ra, rb) = (BlameReport::build(&a), BlameReport::build(&b));
    assert_eq!(ra.render(10), rb.render(10), "blame table diverged");
    assert_eq!(
        ra.to_json().to_string_pretty(),
        rb.to_json().to_string_pretty(),
        "blame JSON diverged"
    );
    assert_eq!(ra.folded(), rb.folded(), "folded blame stacks diverged");

    let (_, after1) = lulesh_trace(LuleshVariant::ReadMostly);
    let (_, after2) = lulesh_trace(LuleshVariant::ReadMostly);
    let d1 = diff(
        digest(&ta, "before"),
        digest(&after1, "after"),
        DEFAULT_THRESHOLD,
    )
    .unwrap();
    let d2 = diff(
        digest(&tb, "before"),
        digest(&after2, "after"),
        DEFAULT_THRESHOLD,
    )
    .unwrap();
    assert_eq!(d1.render(10), d2.render(10), "diff report diverged");
    assert_eq!(
        d1.to_json(10).to_string_pretty(),
        d2.to_json(10).to_string_pretty(),
        "diff JSON diverged"
    );
}

// ----------------------------------------------------------------------
// Verdicts
// ----------------------------------------------------------------------

#[test]
fn self_diff_is_zero_and_not_a_regression() {
    let (_, text) = lulesh_trace(xplacer_workloads::lulesh::LuleshVariant::Baseline);
    let d = diff(digest(&text, "a"), digest(&text, "b"), DEFAULT_THRESHOLD).unwrap();
    assert!(d.is_zero(), "self-diff must report zero deltas");
    assert!(!d.regressed());
    assert_eq!(d.verdict, Verdict::Neutral);
    assert!(d.unchanged > 0, "aligned rows must be counted, not dropped");
}

#[test]
fn read_mostly_advice_improves_lulesh_and_the_reverse_diff_regresses() {
    use xplacer_workloads::lulesh::LuleshVariant;
    let (before, tb) = lulesh_trace(LuleshVariant::Baseline);
    let (after, ta) = lulesh_trace(LuleshVariant::ReadMostly);
    assert!(
        after.elapsed_ns < before.elapsed_ns,
        "ReadMostly must beat the fault-heavy baseline"
    );
    let fwd = diff(
        digest(&tb, "before"),
        digest(&ta, "after"),
        DEFAULT_THRESHOLD,
    )
    .unwrap();
    assert_eq!(fwd.verdict, Verdict::Improved);
    assert!(!fwd.regressed());
    // The same pair reversed is the synthetic regressed trace: the CI
    // gate must fire.
    let rev = diff(
        digest(&ta, "after"),
        digest(&tb, "before"),
        DEFAULT_THRESHOLD,
    )
    .unwrap();
    assert_eq!(rev.verdict, Verdict::Regressed);
    assert!(rev.regressed(), "reverse diff must trip the exit-1 gate");
}

// ----------------------------------------------------------------------
// Golden snapshots
// ----------------------------------------------------------------------

fn check_golden(name: &str, actual: &str) {
    if let Err(e) = check_or_bless(&golden_path(name), actual) {
        panic!("{e}");
    }
}

#[test]
fn golden_blame_lulesh() {
    let r = BlameReport::build(&lulesh_trace(xplacer_workloads::lulesh::LuleshVariant::Baseline).0);
    check_golden("blame_lulesh.golden", &r.render(10));
    check_golden("blame_lulesh_folded.golden", &r.folded());
}

#[test]
fn golden_blame_replay_lulesh_matches_the_cli_pipeline() {
    // ci.sh byte-compares `xplacer blame --replay` on the demo-recorded
    // events file against this same snapshot.
    let r = BlameReport::build(&demo_style_lulesh_trace());
    check_golden("blame_replay_lulesh.golden", &r.render(10));
}

#[test]
fn golden_diff_lulesh_read_mostly() {
    use xplacer_workloads::lulesh::LuleshVariant;
    let (_, tb) = lulesh_trace(LuleshVariant::Baseline);
    let (_, ta) = lulesh_trace(LuleshVariant::ReadMostly);
    let d = diff(
        digest(&tb, "lulesh-baseline"),
        digest(&ta, "lulesh-read-mostly"),
        DEFAULT_THRESHOLD,
    )
    .unwrap();
    check_golden("diff_lulesh_read_mostly.golden", &d.render(10));
}
