//! `xplacer check` end-to-end: the bug-injection corpus produces its
//! golden diagnostics, clean programs and all 8 workloads produce zero
//! findings, and the bulk fast path is bit-identical to the per-word
//! fallback (DESIGN.md §18).

use std::fs;
use std::path::{Path, PathBuf};

use proptest::{Strategy, TestRng};
use xplacer_check::{check_source, check_workload, CheckOptions};
use xplacer_conformance::generator::CleanProgram;
use xplacer_conformance::{conformance_cases, snapshot};
use xplacer_lang::unparse::unparse;
use xplacer_workloads::driver::WORKLOAD_NAMES;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The committed buggy corpus: `(name, source)` in file order.
fn buggy_corpus() -> Vec<(String, String)> {
    let dir = repo_path("corpus/buggy");
    let mut names: Vec<_> = fs::read_dir(&dir)
        .expect("tests/corpus/buggy exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cu"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|p| {
            (
                p.file_stem().unwrap().to_string_lossy().into_owned(),
                fs::read_to_string(&p).unwrap(),
            )
        })
        .collect()
}

/// Render one corpus check the way the golden files store it: the table,
/// then the JSON document.
fn render_check(name: &str, src: &str, bulk: bool) -> String {
    let opts = CheckOptions {
        bulk,
        ..CheckOptions::default()
    };
    let out = check_source(&format!("{name}.cu"), src, &opts)
        .unwrap_or_else(|e| panic!("{name}: checker refused the program: {e}"));
    format!(
        "{}---- json ----\n{}\n",
        out.report.render(),
        out.report.to_json().to_string_pretty()
    )
}

// =====================================================================
// Bug-injection corpus: every program produces exactly its golden
// diagnostic (class, span, allocation).
// =====================================================================

#[test]
fn buggy_corpus_matches_goldens() {
    let corpus = buggy_corpus();
    assert!(
        corpus.len() >= 10,
        "bug-injection corpus must cover all defect classes, found {}",
        corpus.len()
    );
    for (name, src) in &corpus {
        let got = render_check(name, src, true);
        if let Err(e) = snapshot::check_or_bless(
            &repo_path(&format!("corpus/buggy/{name}.check.golden")),
            &got,
        ) {
            panic!("{name}: {e}");
        }
    }
}

#[test]
fn every_buggy_program_has_findings() {
    for (name, src) in buggy_corpus() {
        let out = check_source(&format!("{name}.cu"), &src, &CheckOptions::default()).unwrap();
        assert!(
            !out.report.clean(),
            "{name} is in the buggy corpus but produced no findings"
        );
    }
}

// =====================================================================
// False-positive property: clean inputs produce zero findings.
// =====================================================================

#[test]
fn all_workloads_are_clean() {
    for which in WORKLOAD_NAMES {
        let out = check_workload(which, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{which}: {e}"));
        assert!(
            out.report.clean(),
            "workload {which} produced findings:\n{}",
            out.report.render()
        );
    }
}

#[test]
fn generated_clean_programs_are_clean() {
    let cases = conformance_cases().max(64);
    for i in 0..cases {
        let mut rng = TestRng::deterministic(&format!("xplacer-check-clean-{i}"));
        let prog = CleanProgram.generate(&mut rng);
        let src = unparse(&prog);
        let out = check_source("generated.cu", &src, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("case {i}: checker refused: {e}\n---- program ----\n{src}"));
        assert!(
            out.report.clean(),
            "case {i}: clean generated program produced findings:\n{}\n---- program ----\n{src}",
            out.report.render()
        );
    }
}

// =====================================================================
// Bulk-vs-per-word parity: findings and shadow state byte-identical.
// =====================================================================

#[test]
fn bulk_and_per_word_agree_on_corpus() {
    for (name, src) in buggy_corpus() {
        let bulk = render_check(&name, &src, true);
        let word = render_check(&name, &src, false);
        assert_eq!(bulk, word, "{name}: bulk vs per-word reports differ");
        let ob = check_source(
            &format!("{name}.cu"),
            &src,
            &CheckOptions {
                bulk: true,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        let ow = check_source(
            &format!("{name}.cu"),
            &src,
            &CheckOptions {
                bulk: false,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            ob.shadow_digest, ow.shadow_digest,
            "{name}: shadow state diverged between bulk and per-word"
        );
    }
}

#[test]
fn bulk_and_per_word_agree_on_generated_programs() {
    let cases = (conformance_cases() / 4).max(16);
    for i in 0..cases {
        let mut rng = TestRng::deterministic(&format!("xplacer-check-parity-{i}"));
        let prog = CleanProgram.generate(&mut rng);
        let src = unparse(&prog);
        let run = |bulk: bool| {
            check_source(
                "generated.cu",
                &src,
                &CheckOptions {
                    bulk,
                    ..CheckOptions::default()
                },
            )
            .unwrap()
        };
        let (b, w) = (run(true), run(false));
        assert_eq!(b.report, w.report, "case {i}\n---- program ----\n{src}");
        assert_eq!(b.shadow_digest, w.shadow_digest, "case {i}");
    }
}

#[test]
fn bulk_and_per_word_agree_on_workloads() {
    // The full sweep is covered by ci.sh; here the two workloads with the
    // richest access mix (bulk sweeps + async streams) pin the property.
    for which in ["lulesh", "pathfinder"] {
        let run = |bulk: bool| {
            check_workload(
                which,
                &CheckOptions {
                    bulk,
                    ..CheckOptions::default()
                },
            )
            .unwrap()
        };
        let (b, w) = (run(true), run(false));
        assert_eq!(b.report, w.report, "{which}: reports differ");
        assert_eq!(b.shadow_digest, w.shadow_digest, "{which}: shadow differs");
    }
}

// =====================================================================
// Determinism: repeat runs are byte-identical.
// =====================================================================

#[test]
fn check_output_is_deterministic() {
    for (name, src) in buggy_corpus().into_iter().take(3) {
        let a = render_check(&name, &src, true);
        let b = render_check(&name, &src, true);
        assert_eq!(a, b, "{name}: repeat check runs differ");
    }
    let w1 = check_workload("pathfinder", &CheckOptions::default()).unwrap();
    let w2 = check_workload("pathfinder", &CheckOptions::default()).unwrap();
    assert_eq!(w1.report.render(), w2.report.render());
    assert_eq!(
        w1.report.to_json().to_string_pretty(),
        w2.report.to_json().to_string_pretty()
    );
}

// =====================================================================
// Defensive behavior: the checker rejects, never panics.
// =====================================================================

#[test]
fn parse_errors_are_usage_errors_not_findings() {
    let e = check_source("broken.cu", "int main( {", &CheckOptions::default()).unwrap_err();
    assert!(e.contains("line "), "parse error keeps its span: {e}");
}

#[test]
fn max_errors_truncates_but_stays_dirty() {
    // The leak program with several allocations exercises truncation.
    let src = "
int main() {
  int* a = (int*)malloc(16 * sizeof(int));
  int* b = (int*)malloc(16 * sizeof(int));
  int* c = (int*)malloc(16 * sizeof(int));
  a[0] = 1; b[0] = 1; c[0] = 1;
  return 0;
}
";
    let out = check_source(
        "leaky.cu",
        src,
        &CheckOptions {
            max_errors: 1,
            ..CheckOptions::default()
        },
    )
    .unwrap();
    assert_eq!(out.report.findings.len(), 1);
    assert_eq!(out.report.truncated, 2);
    assert!(!out.report.clean());
    assert!(out.report.render().contains("suppressed by --max-errors"));
}
