//! Differential conformance harness (DESIGN.md §13).
//!
//! Three oracles adversarially cross-check the layers against each other:
//!
//! * **Generated programs** — random well-typed MiniCU programs must
//!   round-trip through parse/unparse and behave identically whether the
//!   instrumentation runs as an AST pass or through its unparsed text.
//! * **Reference UM model** — a naive page-map model checks every driver
//!   decision, both on random operation sequences against `UmDriver`
//!   directly and in lockstep with full workload runs via `MemHook`.
//! * **Golden snapshots** — canonical reports/profiles for the 8
//!   workloads and the `examples/mini` programs are committed under
//!   `tests/golden/`; regenerate with `XPLACER_BLESS=1`.
//!
//! Case counts honour `XPLACER_CONFORMANCE_CASES` (CI smoke sets 64).

use std::fs;
use std::path::{Path, PathBuf};

use hetsim::gpumem::{EvictionPolicy, GpuMemory};
use hetsim::unified::UmDriver;
use hetsim::{platform, Device, MemAdvise, Stats};
use proptest::{Strategy, TestRng};
use xplacer_conformance::generator::ArbProgram;
use xplacer_conformance::refmodel::{diff_page, RefUmModel};
use xplacer_conformance::{check_program, conformance_cases, golden, mutate, snapshot};
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn golden_path(name: &str) -> PathBuf {
    repo_path(&format!("golden/{name}"))
}

// =====================================================================
// Oracle 1: generated programs.
// =====================================================================

#[test]
fn generated_programs_conform() {
    let cases = conformance_cases();
    for i in 0..cases {
        let mut rng = TestRng::deterministic(&format!("xplacer-conformance-case-{i}"));
        let prog = ArbProgram.generate(&mut rng);
        if let Err(e) = check_program(&prog) {
            panic!(
                "generated program case {i} violated conformance: {e}\n\
                 ---- program ----\n{}",
                unparse(&prog)
            );
        }
    }
}

/// The committed generator seed corpus must stay conformant: these are
/// pinned samples of the generator's output (bless regenerates them from
/// the named seeds), so generator changes show up as corpus diffs.
#[test]
fn corpus_valid_programs_conform() {
    let dir = repo_path("corpus/valid");
    if snapshot::blessing() {
        fs::create_dir_all(&dir).unwrap();
        for i in 0..8 {
            let mut rng = TestRng::deterministic(&format!("xplacer-corpus-seed-{i}"));
            let prog = ArbProgram.generate(&mut rng);
            fs::write(dir.join(format!("gen_{i:02}.cu")), unparse(&prog)).unwrap();
        }
    }
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/corpus/valid missing; regenerate with XPLACER_BLESS=1")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 8, "expected >= 8 corpus programs");
    for path in entries {
        let src = fs::read_to_string(&path).unwrap();
        let prog = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Err(e) = check_program(&prog) {
            panic!(
                "corpus program {} violated conformance: {e}",
                path.display()
            );
        }
    }
}

// =====================================================================
// Negative paths: malformed inputs error with spans, never panic.
// =====================================================================

fn mini_sources() -> Vec<(String, String)> {
    [
        "alternating.cu",
        "pathfinder.cu",
        "smith_waterman.cu",
        "unnecessary_transfer.cu",
    ]
    .iter()
    .map(|n| {
        let p = repo_path(&format!("../examples/mini/{n}"));
        (n.to_string(), fs::read_to_string(&p).unwrap())
    })
    .collect()
}

#[test]
fn invalid_corpus_errors_are_spanned() {
    let dir = repo_path("corpus/invalid");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/corpus/invalid missing")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 8, "expected >= 8 invalid corpus inputs");
    for path in entries {
        let src = fs::read_to_string(&path).unwrap();
        match parse(&src) {
            Ok(_) => panic!("{} unexpectedly parsed", path.display()),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("line "),
                    "{}: error lacks a source span: {msg}",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn mutated_inputs_never_panic() {
    // Mutate both the committed mini programs and generated programs.
    let mut seeds: Vec<String> = mini_sources().into_iter().map(|(_, s)| s).collect();
    for i in 0..4 {
        let mut rng = TestRng::deterministic(&format!("xplacer-mutation-base-{i}"));
        seeds.push(unparse(&ArbProgram.generate(&mut rng)));
    }
    let rounds = (conformance_cases() / 4).max(16);
    let mut rng = TestRng::deterministic("xplacer-mutations");
    let mut parsed_ok = 0u32;
    let mut errored = 0u32;
    for round in 0..rounds {
        let base = &seeds[(round % seeds.len() as u64) as usize];
        let mutated = mutate::mutate_some(base, &mut rng);
        let result = std::panic::catch_unwind(|| parse(&mutated));
        match result {
            Err(_) => panic!("parse panicked on mutated input:\n---- input ----\n{mutated}"),
            Ok(Err(e)) => {
                errored += 1;
                let msg = e.to_string();
                assert!(
                    msg.contains("line "),
                    "mutated input error lacks a span: {msg}\n---- input ----\n{mutated}"
                );
            }
            Ok(Ok(prog)) => {
                parsed_ok += 1;
                // Still-valid mutants must unparse/reparse cleanly.
                let text = unparse(&prog);
                if let Err(e) = parse(&text) {
                    panic!(
                        "unparse of a parsed mutant no longer parses: {e}\n\
                         ---- mutant ----\n{mutated}\n---- unparsed ----\n{text}"
                    );
                }
            }
        }
    }
    // The mutator must actually exercise the error paths.
    assert!(errored > 0, "no mutated input errored ({parsed_ok} parsed)");
}

/// The memory checker consumes the same hostile inputs: mutated programs
/// may be rejected (parse/semantic errors) or produce findings, but
/// `check_source` must never panic.
#[test]
fn checker_never_panics_on_mutated_inputs() {
    let mut seeds: Vec<String> = mini_sources().into_iter().map(|(_, s)| s).collect();
    for i in 0..4 {
        let mut rng = TestRng::deterministic(&format!("xplacer-mutation-base-{i}"));
        seeds.push(unparse(&ArbProgram.generate(&mut rng)));
    }
    let rounds = (conformance_cases() / 4).max(16);
    let mut rng = TestRng::deterministic("xplacer-check-mutations");
    let mut rejected = 0u32;
    for round in 0..rounds {
        let base = &seeds[(round % seeds.len() as u64) as usize];
        let mutated = mutate::mutate_some(base, &mut rng);
        let result = std::panic::catch_unwind(|| {
            xplacer_check::check_source(
                "mutant.cu",
                &mutated,
                &xplacer_check::CheckOptions::default(),
            )
        });
        match result {
            Err(_) => panic!("checker panicked on mutated input:\n---- input ----\n{mutated}"),
            Ok(Err(e)) => {
                rejected += 1;
                assert!(
                    !e.is_empty(),
                    "checker rejected a mutant with an empty message:\n{mutated}"
                );
            }
            Ok(Ok(_)) => {}
        }
    }
    assert!(rejected > 0, "no mutated input was rejected by the checker");
}

/// Semantically invalid programs that *parse* must surface interpreter
/// errors, not panics.
#[test]
fn semantic_errors_reported_not_panicked() {
    let bad = [
        // Call to an undefined function.
        "int main() { frobnicate(1); return 0; }",
        // Memcpy with an illegal direction for the operand kinds.
        "int main() { int* d; cudaMalloc((void**)&d, 64); int* h; h = (int*)malloc(64); \
         cudaMemcpy(d, h, 64, 2); return 0; }",
        // Advise on unmanaged memory.
        "int main() { int* h; h = (int*)malloc(64); cudaMemAdvise(h, 64, 1, 0); return 0; }",
        // Out-of-bounds store.
        "int main() { int* p; cudaMallocManaged((void**)&p, 4 * sizeof(int)); p[9] = 1; \
         return 0; }",
    ];
    for src in bad {
        for instrumented in [false, true] {
            let r = std::panic::catch_unwind(|| {
                xplacer_interp::run_source(src, platform::intel_pascal(), instrumented)
            });
            match r {
                Err(_) => panic!("interpreter panicked (instrumented={instrumented}):\n{src}"),
                Ok(Ok(_)) => panic!("expected an error (instrumented={instrumented}):\n{src}"),
                Ok(Err(_)) => {}
            }
        }
    }
}

// =====================================================================
// Oracle 2: reference UM model.
// =====================================================================

/// Drive `UmDriver` and `RefUmModel` with identical random operation
/// sequences (accesses, advice, prefetches, on two GPUs and both NVLink
/// flavors) and require identical outcomes, counters, and page states.
#[test]
fn ref_um_model_matches_driver_on_random_sequences() {
    let cases = conformance_cases().max(64);
    for case in 0..cases {
        let mut rng = TestRng::deterministic(&format!("xplacer-refum-{case}"));
        let mut pf = platform::intel_pascal();
        let nvlink = rng.below(2) == 1;
        pf.cpu_direct_access_gpu = nvlink;
        let page_size = pf.page_size;
        let base = hetsim::alloc::HEAP_BASE;
        let pages = 4 + rng.below(8); // 4..=11 managed pages
        let size = pages * page_size;

        let mut drv = UmDriver::new(page_size);
        let mut gpus = vec![
            GpuMemory::with_policy(1 << 40, page_size, EvictionPolicy::Fifo),
            GpuMemory::with_policy(1 << 40, page_size, EvictionPolicy::Fifo),
        ];
        let mut stats = Stats::default();
        let mut model = RefUmModel::new(page_size, nvlink);
        drv.register_alloc(base, size, true);
        model.register_alloc(base, size, true);

        let first_page = base / page_size;
        let devices = [Device::Cpu, Device::Gpu(0), Device::Gpu(1)];
        for step in 0..120 {
            match rng.below(10) {
                // Mostly accesses.
                0..=6 => {
                    let dev = devices[rng.below(3) as usize];
                    let page = first_page + rng.below(pages);
                    let write = rng.below(2) == 1;
                    let out = drv.access(&pf, &mut gpus, &mut stats, dev, page, write);
                    let exp = model.access(dev, page, write);
                    assert_eq!(
                        (
                            out.fault,
                            out.duplicated,
                            out.migrated,
                            out.remote,
                            out.invalidations
                        ),
                        (
                            exp.fault,
                            exp.duplicated,
                            exp.migrated,
                            exp.remote,
                            exp.invalidations
                        ),
                        "case {case} step {step}: outcome diverged for {dev:?} \
                         page {page:#x} write={write}"
                    );
                    assert_eq!(out.evictions, 0, "unexpected eviction with ample capacity");
                }
                7 => {
                    let advice = match rng.below(6) {
                        0 => MemAdvise::SetReadMostly,
                        1 => MemAdvise::UnsetReadMostly,
                        2 => MemAdvise::SetPreferredLocation(devices[rng.below(3) as usize]),
                        3 => MemAdvise::UnsetPreferredLocation,
                        4 => MemAdvise::SetAccessedBy(devices[rng.below(3) as usize]),
                        _ => MemAdvise::UnsetAccessedBy(devices[rng.below(3) as usize]),
                    };
                    drv.advise(base, size, advice);
                    model.advise(base, size, advice);
                }
                8 => {
                    let dst = devices[rng.below(3) as usize];
                    let out = drv.prefetch(&pf, &mut gpus, &mut stats, base, size, dst);
                    let (p, b) = model.prefetch(base, size, dst);
                    assert_eq!(
                        (out.pages, out.bytes_moved),
                        (p, b),
                        "case {case} step {step}: prefetch to {dst:?} diverged"
                    );
                }
                // Sub-range prefetch.
                _ => {
                    let dst = devices[rng.below(3) as usize];
                    let off = rng.below(pages) * page_size;
                    let len = (rng.below(3) + 1) * page_size;
                    let len = len.min(size - off);
                    let out = drv.prefetch(&pf, &mut gpus, &mut stats, base + off, len, dst);
                    let (p, b) = model.prefetch(base + off, len, dst);
                    assert_eq!((out.pages, out.bytes_moved), (p, b));
                }
            }
            // Counter lockstep on every step.
            let s = &model.stats;
            assert_eq!(
                (
                    stats.cpu_faults,
                    stats.gpu_faults,
                    stats.migrations_h2d,
                    stats.migrations_d2h
                ),
                (
                    s.cpu_faults,
                    s.gpu_faults,
                    s.migrations_h2d,
                    s.migrations_d2h
                ),
                "case {case} step {step}: fault/migration counters diverged"
            );
            assert_eq!(
                (
                    stats.bytes_migrated,
                    stats.duplications,
                    stats.invalidations,
                    stats.remote_accesses
                ),
                (
                    s.bytes_migrated,
                    s.duplications,
                    s.invalidations,
                    s.remote_accesses
                ),
                "case {case} step {step}: byte/coherence counters diverged"
            );
            assert_eq!(stats.evictions, 0);
        }
        // Full page-state agreement at the end.
        for page in first_page..first_page + pages {
            let diffs = diff_page(&model.page(page), drv.state(page));
            assert!(
                diffs.is_empty(),
                "case {case}: final state diverged on page {page:#x}: {}",
                diffs.join(", ")
            );
        }
    }
}

/// Eviction/writeback conservation with a tight FIFO GPU memory: every
/// evicted dirty page writes back exactly one page of bytes and counts as
/// one D2H migration; residency never exceeds capacity.
#[test]
fn eviction_writeback_conservation() {
    let pf = platform::intel_pascal();
    let page_size = pf.page_size;
    let base = hetsim::alloc::HEAP_BASE;
    let pages = 16u64;
    let capacity = 4u64;
    for case in 0..32 {
        let mut rng = TestRng::deterministic(&format!("xplacer-evict-{case}"));
        let mut drv = UmDriver::new(page_size);
        let mut gpus = vec![GpuMemory::with_policy(
            capacity * page_size,
            page_size,
            EvictionPolicy::Fifo,
        )];
        let mut stats = Stats::default();
        drv.register_alloc(base, pages * page_size, true);
        let first_page = base / page_size;
        let mut last = stats.clone();
        for step in 0..200 {
            let dev = if rng.below(4) == 0 {
                Device::Cpu
            } else {
                Device::Gpu(0)
            };
            let page = first_page + rng.below(pages);
            let write = rng.below(2) == 1;
            let out = drv.access(&pf, &mut gpus, &mut stats, dev, page, write);

            assert!(gpus[0].len() <= capacity, "residency exceeded capacity");
            let d_evict = stats.evictions - last.evictions;
            let d_bytes_evicted = stats.bytes_evicted - last.bytes_evicted;
            assert_eq!(d_evict, out.evictions as u64, "step {step}: eviction count");
            assert_eq!(
                d_bytes_evicted,
                out.writeback_pages as u64 * page_size,
                "step {step}: writeback bytes not conserved"
            );
            assert_eq!(out.evicted_bytes, out.writeback_pages as u64 * page_size);
            assert!(out.writeback_pages <= out.evictions);
            // Every writeback is accounted as a D2H migration.
            let d_d2h = stats.migrations_d2h - last.migrations_d2h;
            let own_migration = u64::from(out.migrated && dev == Device::Cpu);
            assert_eq!(
                d_d2h,
                own_migration + out.writeback_pages as u64,
                "step {step}: writebacks not counted as D2H migrations"
            );
            last = stats.clone();
        }
        assert!(
            stats.evictions > 0,
            "case {case}: eviction path never exercised"
        );
    }
}

/// Deterministic FIFO scenario: a monotone GPU write sweep over more
/// pages than fit evicts in insertion order, each eviction writing back
/// its dirty page.
#[test]
fn fifo_eviction_order_is_exact() {
    let pf = platform::intel_pascal();
    let page_size = pf.page_size;
    let base = hetsim::alloc::HEAP_BASE;
    let capacity = 4u64;
    let total = 10u64;
    let mut drv = UmDriver::new(page_size);
    let mut gpus = vec![GpuMemory::with_policy(
        capacity * page_size,
        page_size,
        EvictionPolicy::Fifo,
    )];
    let mut stats = Stats::default();
    drv.register_alloc(base, total * page_size, true);
    let first_page = base / page_size;
    for k in 0..total {
        let out = drv.access(
            &pf,
            &mut gpus,
            &mut stats,
            Device::Gpu(0),
            first_page + k,
            true,
        );
        assert!(out.migrated);
        if k < capacity {
            assert_eq!(out.evictions, 0);
        } else {
            assert_eq!(out.evictions, 1);
            assert_eq!(out.writeback_pages, 1);
            // FIFO: the victim is the oldest inserted page.
            let victim = first_page + (k - capacity);
            assert!(
                !gpus[0].resident(victim),
                "page {victim:#x} should be evicted"
            );
            let st = drv.state(victim);
            assert_eq!(st.owner, Device::Cpu, "written-back page returns to CPU");
        }
    }
    assert_eq!(stats.evictions, total - capacity);
    assert_eq!(stats.bytes_evicted, (total - capacity) * page_size);
    assert_eq!(stats.migrations_d2h, total - capacity);
    // h2d: one per on-demand migration.
    assert_eq!(stats.migrations_h2d, total);
}

/// The model in lockstep with the full machine across every workload.
/// Only lulesh and smith_waterman allocate managed memory (the rodinia
/// ports use explicit device memory + memcpy), so only those two must
/// produce checked managed accesses; for the rest the hook verifies that
/// no unified-memory driver activity appears at all.
#[test]
fn ref_um_model_lockstep_all_workloads() {
    const UM_WORKLOADS: [&str; 2] = ["lulesh", "smith_waterman"];
    for name in golden::WORKLOADS {
        let res = golden::lockstep_workload(name);
        assert!(
            res.divergences.is_empty(),
            "{name}: {} divergences, first: {}",
            res.divergences.len(),
            res.divergences.first().map(String::as_str).unwrap_or("")
        );
        if UM_WORKLOADS.contains(&name) {
            assert!(
                res.checked_accesses > 0,
                "{name}: no managed accesses checked"
            );
            assert!(res.checked_events > 0, "{name}: no driver events checked");
        }
    }
}

/// The bulk fast path is invisible: every workload produces a bit-exact
/// fingerprint (elapsed time, stats, timed event stream, shadow flags,
/// rendered report) whether ranges go through `on_access_range` or
/// decompose into the per-word scalar protocol.
#[test]
fn bulk_fast_path_matches_per_word_on_all_workloads() {
    for name in golden::WORKLOADS {
        let fast = golden::workload_bulk_fingerprint(name, true);
        let slow = golden::workload_bulk_fingerprint(name, false);
        if fast != slow {
            let diff = fast
                .lines()
                .zip(slow.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            panic!(
                "{name}: bulk and per-word fingerprints differ; first \
                 differing line: {diff:?}"
            );
        }
    }
}

/// The reference UM model verifies the ranged hook seam too: with bulk on
/// the UM workloads drive `on_access_range` (checked_ranges > 0), with
/// bulk off the same workloads decompose per-word — and the model stays
/// in lockstep on both paths.
#[test]
fn ref_um_model_lockstep_both_bulk_paths() {
    for name in ["lulesh", "smith_waterman"] {
        let fast = golden::lockstep_workload_with(name, true);
        let slow = golden::lockstep_workload_with(name, false);
        for (label, res) in [("bulk", &fast), ("per-word", &slow)] {
            assert!(
                res.divergences.is_empty(),
                "{name} ({label}): {} divergences, first: {}",
                res.divergences.len(),
                res.divergences.first().map(String::as_str).unwrap_or("")
            );
        }
        assert!(
            fast.checked_ranges > 0,
            "{name}: bulk run never exercised on_access_range"
        );
        assert_eq!(slow.checked_ranges, 0, "{name}: per-word run saw ranges");
        assert_eq!(
            fast.checked_accesses, slow.checked_accesses,
            "{name}: paths checked different managed access counts"
        );
    }
}

/// Lockstep also holds for interpreted mini-CUDA programs (instrumented
/// runs on a hook-equipped machine).
#[test]
fn ref_um_model_lockstep_mini_programs() {
    use std::cell::RefCell;
    use std::rc::Rc;
    for (name, src) in mini_sources() {
        let pf = platform::intel_pascal();
        let mut m = hetsim::Machine::new(pf.clone());
        let hook = Rc::new(RefCell::new(
            xplacer_conformance::refmodel::LockstepHook::new(
                pf.page_size,
                pf.cpu_direct_access_gpu,
            ),
        ));
        m.add_hook(hook.clone());
        let (_, _interp) =
            xplacer_interp::run_source_on(&src, m, true).unwrap_or_else(|e| panic!("{name}: {e}"));
        let h = hook.borrow();
        assert!(
            h.divergences.is_empty(),
            "{name}: {}",
            h.divergences.join("\n")
        );
        // Only the managed-memory examples have UM traffic to check.
        if ["alternating.cu", "smith_waterman.cu"].contains(&name.as_str()) {
            assert!(h.checked_accesses > 0, "{name}: nothing checked");
        }
    }
}

// =====================================================================
// Oracle 3: golden snapshots.
// =====================================================================

#[test]
fn golden_workload_reports() {
    let mut failures = Vec::new();
    for name in golden::WORKLOADS {
        let doc = golden::workload_doc(name);
        if let Err(e) = snapshot::check_or_bless(&golden_path(&format!("{name}.golden")), &doc) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn golden_mini_program_reports() {
    let mut failures = Vec::new();
    for (name, src) in mini_sources() {
        let doc = golden::mini_doc(&format!("examples/mini/{name}"), &src)
            .unwrap_or_else(|e| panic!("{e}"));
        let stem = name.trim_end_matches(".cu");
        if let Err(e) = snapshot::check_or_bless(&golden_path(&format!("mini_{stem}.golden")), &doc)
        {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

// =====================================================================
// Determinism of the bench smoke fingerprint (guards the CI gate).
// =====================================================================

#[test]
fn bench_smoke_is_byte_deterministic() {
    let tmp = std::env::temp_dir().join(format!("xplacer-det-{}", std::process::id()));
    let (a, b) = (tmp.join("a"), tmp.join("b"));
    xplacer_bench::smoke::run_smoke(&a).unwrap();
    xplacer_bench::smoke::run_smoke(&b).unwrap();
    let mut names: Vec<String> = fs::read_dir(&a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(
        names.iter().any(|n| n == "BENCH_smoke.json"),
        "aggregate fingerprint missing"
    );
    assert!(names.iter().filter(|n| n.starts_with("BENCH_")).count() >= 6);
    for n in &names {
        let fa = fs::read(a.join(n)).unwrap();
        let fb = fs::read(b.join(n)).unwrap_or_else(|e| panic!("{n} missing in run 2: {e}"));
        assert_eq!(fa, fb, "{n} differs between identical smoke runs");
    }
    let _ = fs::remove_dir_all(&tmp);
}
