// Defect: free of an interior pointer, not the allocation base.

int main() {
    int* a = (int*)malloc(32 * sizeof(int));
    for (int i = 0; i < 32; i++) {
        a[i] = i;
    }
    int* mid = a + 8;
    free(mid);
    return 0;
}
