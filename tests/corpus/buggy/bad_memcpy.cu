// Defect: a device-to-device copy declared cudaMemcpyHostToDevice —
// the direction constant does not match the operands.

int main() {
    int n = 32;
    int* dev_a;
    int* dev_b;
    cudaMalloc((void**)&dev_a, n * sizeof(int));
    cudaMalloc((void**)&dev_b, n * sizeof(int));
    int* h = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) {
        h[i] = i;
    }
    cudaMemcpy(dev_a, h, n * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(dev_b, dev_a, n * sizeof(int), cudaMemcpyHostToDevice);
    free(h);
    cudaFree(dev_a);
    cudaFree(dev_b);
    return 0;
}
