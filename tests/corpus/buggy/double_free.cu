// Defect: the same device allocation is freed on both sides of a
// cleanup path.

int main() {
    int* buf;
    cudaMalloc((void**)&buf, 64 * sizeof(int));
    cudaFree(buf);
    cudaFree(buf);
    return 0;
}
