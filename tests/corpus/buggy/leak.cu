// Defect: three allocations — host, device, managed — and only the
// device buffer is ever freed.

int main() {
    int* host_buf = (int*)malloc(24 * sizeof(int));
    int* dev_buf;
    cudaMalloc((void**)&dev_buf, 48 * sizeof(int));
    int* shared_buf;
    cudaMallocManaged((void**)&shared_buf, 12 * sizeof(int));
    for (int i = 0; i < 24; i++) {
        host_buf[i] = i;
    }
    for (int i = 0; i < 12; i++) {
        shared_buf[i] = host_buf[i] + 1;
    }
    printf("sum=%d\n", shared_buf[0] + host_buf[0]);
    cudaFree(dev_buf);
    return 0;
}
