// Defect: out-of-bounds read inside a kernel. The guard is `i <= n`, so
// thread 256 reads one element past the end of the 256-element buffer.

__global__ void bump(int* a, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i <= n) {
        a[i] = a[i] + 1;
    }
}

int main() {
    int n = 256;
    int* a;
    cudaMalloc((void**)&a, n * sizeof(int));
    int* init = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) {
        init[i] = i;
    }
    cudaMemcpy(a, init, n * sizeof(int), cudaMemcpyHostToDevice);
    bump<<<3, 128>>>(a, n);
    cudaDeviceSynchronize();
    free(init);
    cudaFree(a);
    return 0;
}
