// Defect: out-of-bounds host write one element past the end of a
// malloc'd buffer. The fence-post loop bound is the classic `<=`.

int main() {
    int n = 25;
    int* a = (int*)malloc(n * sizeof(int));
    for (int i = 0; i <= n; i++) {
        a[i] = i * 2;
    }
    free(a);
    return 0;
}
