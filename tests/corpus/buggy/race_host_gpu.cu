// Defect: the host reads managed memory while an async kernel that
// writes it is still in flight (CPU/GPU race); the stream is only
// synchronized afterwards.

__global__ void scale(int* a, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i < n) {
        a[i] = a[i] * 3;
    }
}

int main() {
    int n = 32;
    int* data;
    cudaMallocManaged((void**)&data, n * sizeof(int));
    for (int i = 0; i < n; i++) {
        data[i] = i + 1;
    }
    int s;
    cudaStreamCreate(&s);
    scale<<<1, 32, 0, s>>>(data, n);
    int early = data[0];
    cudaStreamSynchronize(s);
    printf("early=%d\n", early);
    cudaStreamDestroy(s);
    cudaFree(data);
    return 0;
}
