// Defect: two kernels on different streams store into the same managed
// buffer with no ordering between the launches (GPU/GPU write-write race).

__global__ void fill_one(int* a, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i < n) {
        a[i] = 1;
    }
}

__global__ void fill_two(int* a, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i < n) {
        a[i] = 2;
    }
}

int main() {
    int n = 64;
    int* data;
    cudaMallocManaged((void**)&data, n * sizeof(int));
    for (int i = 0; i < n; i++) {
        data[i] = 0;
    }
    int s1;
    int s2;
    cudaStreamCreate(&s1);
    cudaStreamCreate(&s2);
    fill_one<<<2, 32, 0, s1>>>(data, n);
    fill_two<<<2, 32, 0, s2>>>(data, n);
    cudaDeviceSynchronize();
    printf("d0=%d\n", data[0]);
    cudaStreamDestroy(s1);
    cudaStreamDestroy(s2);
    cudaFree(data);
    return 0;
}
