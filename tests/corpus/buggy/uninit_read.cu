// Defect: the checksum reads a malloc'd buffer that was never written.
// Non-fatal: the program runs to completion and frees its heap.

int main() {
    int n = 16;
    int* a = (int*)malloc(n * sizeof(int));
    int acc = a[3];
    printf("acc=%d\n", acc);
    free(a);
    return 0;
}
