// Defect: the kernel reads its input buffer, but the host-to-device
// copy that should fill `b` was forgotten.

__global__ void combine(int* a, int* b, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i < n) {
        a[i] = b[i] * 2;
    }
}

int main() {
    int n = 64;
    int* a;
    int* b;
    cudaMalloc((void**)&a, n * sizeof(int));
    cudaMalloc((void**)&b, n * sizeof(int));
    combine<<<2, 32>>>(a, b, n);
    cudaDeviceSynchronize();
    cudaFree(a);
    cudaFree(b);
    return 0;
}
