// Defect: read through a managed pointer after cudaFree.

int main() {
    int* data;
    cudaMallocManaged((void**)&data, 40 * sizeof(int));
    for (int i = 0; i < 40; i++) {
        data[i] = i;
    }
    cudaFree(data);
    int x = data[3];
    printf("x=%d\n", x);
    return 0;
}
