__global__ void k(int* a) {}

int main() {
  int* p;
  cudaMallocManaged((void**)&p, 64);
  k<<<1>>>(p);
  return 0;
}
