int main() {
  x = 3;
  int = 4;
  return 0;
}
