int main() {
  int* p;
  cudaMallocManaged((void**)&p, 64);
  p[] = 1;
  return 0;
}
