int main() {
  int i;
  for (i = 0; i < 10; i = i + 1 {
    i = i;
  }
  return 0;
}
