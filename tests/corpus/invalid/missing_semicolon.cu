int main() {
  int x = 1
  return x;
}
