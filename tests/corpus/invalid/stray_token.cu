int main() {
  int x = 0;
  x = x @ 1;
  return x;
}
