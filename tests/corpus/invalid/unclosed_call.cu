int main() {
  int* p;
  cudaMallocManaged((void**)&p, 64;
  return 0;
}
