int main() {
  int x = 1;
  if (x) {
    x = 2;
  return x;
