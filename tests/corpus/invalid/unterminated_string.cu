int main() {
  printf("hello
  return 0;
}
