__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] += (i - a[i]);
        a[((i + 2) % n)] += (a[((i + 5) % n)] - i);
    }
}

__global__ void k1(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] -= (i - a[((i + 7) % n)]);
        a[((i + 5) % n)] += b[((i + 7) % n)];
    }
}

__global__ void k2(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] = a[i];
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (39 * sizeof(int)));
    int* p1;
    cudaMallocManaged((void**)(&p1), (39 * sizeof(int)));
    int* p2;
    cudaMallocManaged((void**)(&p2), (39 * sizeof(int)));
    for (int i = 0; (i < 39); i++) {
        p0[i] = ((i * i) * i);
    }
    for (int i = 0; (i < 39); i++) {
        p1[i] = (i * 4);
    }
    for (int i = 0; (i < 39); i++) {
        p2[i] = i;
    }
    cudaMemPrefetchAsync(p2, (39 * sizeof(int)), -(1));
    k0<<<2, 32>>>(p2, p0, 39);
    cudaDeviceSynchronize();
    for (int i = 0; (i < 39); i++) {
        p0[((i + 3) % 39)] += (p2[i] - (i - p2[((i + 5) % 39)]));
    }
    k1<<<2, 32>>>(p1, p0, 39);
    cudaDeviceSynchronize();
    k2<<<2, 32>>>(p2, p1, 39);
    cudaDeviceSynchronize();
    cudaMemAdvise(p0, (39 * sizeof(int)), 5, 0);
    int acc = 0;
    for (int i = 0; (i < 39); i++) {
        acc += p0[i];
    }
    for (int i = 0; (i < 39); i++) {
        acc += p1[i];
    }
    for (int i = 0; (i < 39); i++) {
        acc += p2[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p0);
    return (acc % 251);
}

