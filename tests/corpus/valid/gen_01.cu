__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[((i + 3) % n)] = a[i];
        a[i] -= b[((i + 3) % n)];
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (12 * sizeof(int)));
    int* p1;
    cudaMalloc((void**)(&p1), (12 * sizeof(int)));
    int* p2;
    p2 = (int*)malloc((12 * sizeof(int)));
    for (int i = 0; (i < 12); i++) {
        p0[i] = i;
    }
    for (int i = 0; (i < 12); i++) {
        p2[i] = (i * i);
    }
    cudaMemcpy(p1, p0, (12 * sizeof(int)), 1);
    cudaMemAdvise(p0, (12 * sizeof(int)), 5, -(1));
    cudaMemAdvise(p0, (12 * sizeof(int)), 2, -(1));
    k0<<<1, 32>>>(p0, p1, 12);
    cudaDeviceSynchronize();
    cudaMemAdvise(p0, (12 * sizeof(int)), 5, -(1));
#pragma xpl diagnostic tracePrint(out; p0)
    int acc = 0;
    for (int i = 0; (i < 12); i++) {
        acc += p0[i];
    }
    for (int i = 0; (i < 12); i++) {
        acc += p2[i];
    }
    printf("acc=%d\n", acc);
    return (acc % 251);
}

