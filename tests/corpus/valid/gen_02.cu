__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[((i + 2) % n)] += ((5 * a[((i + 5) % n)]) * (i - 6));
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (25 * sizeof(int)));
    for (int i = 0; (i < 25); i++) {
        p0[i] = (i - i);
    }
    k0<<<1, 32>>>(p0, p0, 25);
    cudaDeviceSynchronize();
    int acc = 0;
    for (int i = 0; (i < 25); i++) {
        acc += p0[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p0);
    return (acc % 251);
}

