__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] -= ((a[((i + 2) % n)] - b[((i + 4) % n)]) * (i * a[((i + 7) % n)]));
        a[i] -= (a[i] + i);
    }
}

__global__ void k1(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[((i + 6) % n)] += b[((i + 3) % n)];
        a[((i + 5) % n)] -= 4;
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (31 * sizeof(int)));
    for (int i = 0; (i < 31); i++) {
        p0[i] = (5 * i);
    }
    k0<<<1, 32>>>(p0, p0, 31);
    cudaDeviceSynchronize();
    for (int i = 0; (i < 31); i++) {
        p0[((i + 7) % 31)] = i;
    }
    for (int i = 0; (i < 31); i++) {
        p0[((i + 3) % 31)] += 5;
    }
    k1<<<1, 32>>>(p0, p0, 31);
    cudaDeviceSynchronize();
#pragma xpl diagnostic tracePrint(out; p0)
    int acc = 0;
    for (int i = 0; (i < 31); i++) {
        acc += p0[i];
    }
    printf("acc=%d\n", acc);
    return (acc % 251);
}

