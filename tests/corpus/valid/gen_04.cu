__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[((i + 5) % n)] -= (8 * (a[i] - a[i]));
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (51 * sizeof(int)));
    int* p1;
    cudaMalloc((void**)(&p1), (51 * sizeof(int)));
    for (int i = 0; (i < 51); i++) {
        p0[i] = ((i * i) + (i + i));
    }
    cudaMemcpy(p0, p1, (51 * sizeof(int)), 2);
    k0<<<2, 32>>>(p1, p0, 51);
    cudaDeviceSynchronize();
    cudaMemcpy(p1, p0, (51 * sizeof(int)), 3);
    for (int i = 0; (i < 51); i++) {
        p0[((i + 6) % 51)] -= ((p0[((i + 1) % 51)] + p0[((i + 3) % 51)]) - p0[((i + 7) % 51)]);
    }
    int acc = 0;
    for (int i = 0; (i < 51); i++) {
        acc += p0[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p0);
    cudaFree(p1);
    return (acc % 251);
}

