__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] -= (8 * b[((i + 1) % n)]);
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (58 * sizeof(int)));
    int* p1;
    cudaMallocManaged((void**)(&p1), (58 * sizeof(int)));
    int* p2;
    cudaMalloc((void**)(&p2), (58 * sizeof(int)));
    for (int i = 0; (i < 58); i++) {
        p0[i] = ((i * 14) + 13);
    }
    for (int i = 0; (i < 58); i++) {
        p1[i] = (1 - 12);
    }
    k0<<<2, 32>>>(p1, p1, 58);
    cudaDeviceSynchronize();
    cudaMemcpy(p0, p2, (58 * sizeof(int)), 3);
    int acc = 0;
    for (int i = 0; (i < 58); i++) {
        acc += p0[i];
    }
    for (int i = 0; (i < 58); i++) {
        acc += p1[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p0);
    cudaFree(p1);
    cudaFree(p2);
    return (acc % 251);
}

