__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] += (1 * b[((i + 1) % n)]);
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (58 * sizeof(int)));
    int* p1;
    cudaMallocManaged((void**)(&p1), (58 * sizeof(int)));
    for (int i = 0; (i < 58); i++) {
        p0[i] = (i + 6);
    }
    for (int i = 0; (i < 58); i++) {
        p1[i] = (i - i);
    }
    k0<<<2, 32>>>(p0, p1, 58);
    cudaDeviceSynchronize();
#pragma xpl diagnostic tracePrint(out; p0)
    int acc = 0;
    for (int i = 0; (i < 58); i++) {
        acc += p0[i];
    }
    for (int i = 0; (i < 58); i++) {
        acc += p1[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p1);
    return (acc % 251);
}

