__global__ void k0(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[((i + 6) % n)] += 15;
        a[((i + 2) % n)] = ((i * b[i]) + 0);
    }
}

__global__ void k1(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] -= (a[i] - 8);
    }
}

__global__ void k2(int* a, int* b, int n) {
    int i = (threadIdx.x + (blockIdx.x * blockDim.x));
    if ((i < n)) {
        a[i] += (0 * 0);
    }
}

int main() {
    int* p0;
    cudaMallocManaged((void**)(&p0), (26 * sizeof(int)));
    int* p1;
    p1 = (int*)malloc((26 * sizeof(int)));
    for (int i = 0; (i < 26); i++) {
        p0[i] = (11 - 4);
    }
    for (int i = 0; (i < 26); i++) {
        p1[i] = (15 + 8);
    }
    k0<<<1, 32>>>(p0, p0, 26);
    cudaDeviceSynchronize();
    k1<<<1, 32>>>(p0, p0, 26);
    cudaDeviceSynchronize();
    k2<<<1, 32>>>(p0, p0, 26);
    cudaDeviceSynchronize();
    int acc = 0;
    for (int i = 0; (i < 26); i++) {
        acc += p0[i];
    }
    for (int i = 0; (i < 26); i++) {
        acc += p1[i];
    }
    printf("acc=%d\n", acc);
    cudaFree(p0);
    free(p1);
    return (acc % 251);
}

