//! Shared helpers for the cross-crate integration tests.

use hetsim::{platform, Machine, Platform};

/// The default test platform (Intel + Pascal, the paper's primary
/// testbed).
pub fn test_platform() -> Platform {
    platform::intel_pascal()
}

/// A machine on the default test platform.
pub fn test_machine() -> Machine {
    Machine::new(test_platform())
}

/// Run a MiniCU source instrumented and return the interpreter for
/// inspection; panics on any error with the message inline.
pub fn run_traced(src: &str) -> (xplacer_interp::Outcome, xplacer_interp::Interp) {
    xplacer_interp::run_source(src, test_platform(), true).unwrap_or_else(|e| panic!("{e}"))
}
