//! The shipped MiniCU example programs (examples/mini/*.cu) run
//! correctly through the full pipeline and are diagnosed as documented.

use xplacer_core::FindingKind;
use xplacer_integration_tests::run_traced;

fn load(name: &str) -> String {
    let path = format!("{}/../examples/mini/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Plain-Rust Smith-Waterman with the exact strings the MiniCU program
/// generates.
fn sw_reference(n: usize, m: usize) -> i32 {
    let a: Vec<i32> = (0..n).map(|i| ((i * 5 + 1) % 4) as i32).collect();
    let b: Vec<i32> = (0..m).map(|j| ((j * 7 + 3) % 4) as i32).collect();
    let w = m + 1;
    let mut h = vec![0i32; (n + 1) * (m + 1)];
    let mut best = 0;
    for i in 1..=n {
        for j in 1..=m {
            let s = if a[i - 1] == b[j - 1] { 3 } else { -3 };
            let v = 0
                .max(h[(i - 1) * w + (j - 1)] + s)
                .max(h[(i - 1) * w + j] - 2)
                .max(h[i * w + (j - 1)] - 2);
            h[i * w + j] = v;
            best = best.max(v);
        }
    }
    best
}

#[test]
fn smith_waterman_minicu_matches_reference() {
    let (out, interp) = run_traced(&load("smith_waterman.cu"));
    assert_eq!(out.exit, sw_reference(24, 16) as i64);
    assert!(out.stdout.starts_with("score="));
    // The diagnostic names all four data objects.
    for name in ["H", "P", "a", "b"] {
        assert!(out.stdout.contains(name), "{}", out.stdout);
    }
    // One kernel per computable diagonal.
    assert_eq!(out.stats.kernel_launches, (24 + 16 - 1) as u64);
    let _ = interp;
}

#[test]
fn smith_waterman_minicu_shows_low_density_reads_of_init() {
    let (_, interp) = run_traced(&load("smith_waterman.cu"));
    // The diagnostic point's report fires before the epoch reset.
    let report = &interp.reports[0];
    // H alternates: CPU zero-init + GPU writes/reads.
    assert!(
        report
            .for_alloc("H")
            .any(|f| f.kind() == FindingKind::Alternating),
        "{report}"
    );
}

/// Plain-Rust Pathfinder with the MiniCU program's wall.
fn pathfinder_reference(rows: usize, cols: usize) -> i64 {
    let wall: Vec<i32> = (0..rows * cols)
        .map(|k| ((k * 13 + 5) % 10) as i32)
        .collect();
    let mut prev: Vec<i32> = wall[..cols].to_vec();
    let mut cur = vec![0i32; cols];
    for r in 1..rows {
        for c in 0..cols {
            let mut best = prev[c];
            if c > 0 {
                best = best.min(prev[c - 1]);
            }
            if c + 1 < cols {
                best = best.min(prev[c + 1]);
            }
            cur[c] = best + wall[r * cols + c];
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev.iter().map(|&v| v as i64).sum()
}

#[test]
fn pathfinder_minicu_matches_reference() {
    let (out, _) = run_traced(&load("pathfinder.cu"));
    let want = pathfinder_reference(11, 64);
    assert_eq!(out.exit, want % 251);
    assert!(
        out.stdout.contains(&format!("checksum={want}")),
        "{}",
        out.stdout
    );
    assert_eq!(out.stats.memcpy_h2d, 2);
    assert_eq!(out.stats.memcpy_d2h, 1);
}

#[test]
fn pathfinder_minicu_reports_partial_wall_use_per_epoch() {
    let (out, interp) = run_traced(&load("pathfinder.cu"));
    // Several diagnostic points fired (one per pyramid).
    assert!(interp.reports.len() >= 4, "{}", interp.reports.len());
    // Later epochs see only a slice of gpuWall: low density findings.
    let later = &interp.reports[interp.reports.len() - 1];
    assert!(
        later
            .for_alloc("gpuWall")
            .any(|f| f.kind() == FindingKind::LowDensity),
        "{later}"
    );
    let _ = out;
}

#[test]
fn alternating_minicu_example_detects_pattern_one() {
    let (_, interp) = run_traced(&load("alternating.cu"));
    assert!(interp.reports[0]
        .for_alloc("data")
        .any(|f| f.kind() == FindingKind::Alternating));
}

#[test]
fn unnecessary_transfer_minicu_example_detects_pattern_three() {
    let (_, interp) = run_traced(&load("unnecessary_transfer.cu"));
    let report = &interp.reports[0];
    assert!(report
        .for_alloc("dev")
        .any(|f| f.kind() == FindingKind::UnnecessaryTransfer));
}
