//! Observer purity and exporter round-trips.
//!
//! The observability layer must be *pure*: attaching an event log or a
//! heatmap recorder — alone or fanned out alongside the tracer — may not
//! change a single simulated nanosecond, counter, or workload result.
//! These tests run real workloads under every observer combination and
//! diff the outcomes, then validate the exported artifacts (Chrome trace,
//! metrics JSON, heatmap CSV) against the machine's own counters.

use std::cell::RefCell;
use std::rc::Rc;

use hetsim::{platform, CountingHook, EventLog, Machine, MemHook, Stats};
use xplacer_obs::{chrome_trace, metrics_report, stats_json, HeatmapRecorder, Json};
use xplacer_workloads::lulesh::{run_lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::rodinia::pathfinder::{run_pathfinder, PathfinderConfig, PathfinderVariant};

/// Outcome triple compared across observer configurations.
#[derive(Debug, PartialEq)]
struct Run {
    now_ns: f64,
    stats: Stats,
    check: f64,
}

enum Observe {
    Bare,
    EventLog,
    TracerAndEventLog,
    Everything, // tracer + event log + heatmap
}

fn lulesh_under(obs: Observe) -> (Run, Option<Rc<RefCell<EventLog>>>) {
    run_under(obs, |m| {
        run_lulesh(m, LuleshConfig::new(6, 4), LuleshVariant::Baseline).check
    })
}

fn pathfinder_under(obs: Observe) -> (Run, Option<Rc<RefCell<EventLog>>>) {
    run_under(obs, |m| {
        run_pathfinder(
            m,
            PathfinderConfig::new(256, 51, 10),
            PathfinderVariant::Baseline,
        )
        .check
    })
}

fn run_under(
    obs: Observe,
    work: impl FnOnce(&mut Machine) -> f64,
) -> (Run, Option<Rc<RefCell<EventLog>>>) {
    let mut m = Machine::new(platform::intel_pascal());
    let mut log_handle = None;
    match obs {
        Observe::Bare => {}
        Observe::EventLog => {
            let log = Rc::new(RefCell::new(EventLog::new()));
            m.add_hook(log.clone());
            log_handle = Some(log);
        }
        Observe::TracerAndEventLog => {
            let _t = xplacer_core::attach_tracer(&mut m);
            let log = Rc::new(RefCell::new(EventLog::new()));
            m.add_hook(log.clone());
            log_handle = Some(log);
        }
        Observe::Everything => {
            let _t = xplacer_core::attach_tracer(&mut m);
            let log = Rc::new(RefCell::new(EventLog::new()));
            m.add_hook(log.clone());
            let heat = Rc::new(RefCell::new(HeatmapRecorder::new(m.platform().page_size)));
            m.add_hook(heat);
            log_handle = Some(log);
        }
    }
    let check = work(&mut m);
    (
        Run {
            now_ns: m.now(),
            stats: m.stats.clone(),
            check,
        },
        log_handle,
    )
}

// ----------------------------------------------------------------------
// Observer purity
// ----------------------------------------------------------------------

#[test]
fn event_log_does_not_perturb_lulesh() {
    let (bare, _) = lulesh_under(Observe::Bare);
    let (logged, log) = lulesh_under(Observe::EventLog);
    assert_eq!(bare, logged, "event log changed the simulation");
    assert!(
        !log.unwrap().borrow().is_empty(),
        "but it did observe events"
    );
}

#[test]
fn tracer_plus_event_log_fanout_does_not_perturb_lulesh() {
    let (bare, _) = lulesh_under(Observe::Bare);
    let (fanned, _) = lulesh_under(Observe::TracerAndEventLog);
    assert_eq!(
        bare, fanned,
        "tracer+event log fanout changed the simulation"
    );
    let (everything, _) = lulesh_under(Observe::Everything);
    assert_eq!(
        bare, everything,
        "full observer stack changed the simulation"
    );
}

#[test]
fn observers_do_not_perturb_pathfinder() {
    let (bare, _) = pathfinder_under(Observe::Bare);
    let (logged, log) = pathfinder_under(Observe::EventLog);
    assert_eq!(bare, logged);
    assert!(!log.unwrap().borrow().is_empty());
    let (everything, _) = pathfinder_under(Observe::Everything);
    assert_eq!(bare, everything);
}

// ----------------------------------------------------------------------
// Hook composition semantics
// ----------------------------------------------------------------------

#[test]
fn attach_hook_displaces_and_reports_while_add_hook_composes() {
    let mut m = Machine::new(platform::intel_pascal());
    let first = Rc::new(RefCell::new(CountingHook::default()));
    let second = Rc::new(RefCell::new(CountingHook::default()));

    assert!(
        m.attach_hook(first.clone()).is_none(),
        "machine started bare"
    );
    let displaced = m
        .attach_hook(second.clone())
        .expect("attach_hook must hand back the hook it displaced");
    let first_dyn: Rc<RefCell<dyn MemHook>> = first.clone();
    assert!(Rc::ptr_eq(&displaced, &first_dyn));

    // Compose instead: both hooks now see the same traffic.
    m.add_hook(first.clone());
    let p = m.alloc_managed::<f64>(16);
    m.st(p, 0, 1.0);
    m.free(p);
    assert_eq!(first.borrow().allocs, 1);
    assert_eq!(second.borrow().allocs, 1);
    assert_eq!(first.borrow().frees, 1);
    assert_eq!(second.borrow().frees, 1);
}

// ----------------------------------------------------------------------
// Exporter golden checks
// ----------------------------------------------------------------------

/// A lulesh run with no mid-run `reset_metrics` (unlike `run_lulesh`,
/// which resets counters after its untimed warm-up step — the event log
/// deliberately keeps the full history, so the two would disagree).
fn lulesh_full_history() -> (Stats, Rc<RefCell<EventLog>>) {
    let mut m = Machine::new(platform::intel_pascal());
    let _t = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::new()));
    m.add_hook(log.clone());
    let cfg = LuleshConfig::new(6, 2);
    let mut l = xplacer_workloads::lulesh::Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    l.run(&mut m, cfg.steps, |_, _| {});
    let _ = l.check(&mut m);
    (m.stats.clone(), log)
}

#[test]
fn chrome_trace_is_deterministic_and_matches_counters() {
    let (stats_a, log_a) = lulesh_full_history();
    let (_, log_b) = lulesh_full_history();
    let text_a = chrome_trace(&log_a.borrow()).to_string_compact();
    let text_b = chrome_trace(&log_b.borrow()).to_string_compact();
    assert_eq!(text_a, text_b, "trace must be byte-identical across runs");

    let doc = Json::parse(&text_a).expect("trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let kernel_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some("kernel")
        })
        .count() as u64;
    assert_eq!(
        kernel_spans, stats_a.kernel_launches,
        "one span per kernel launch"
    );
    let faults = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("fault"))
        })
        .count() as u64;
    assert_eq!(faults, stats_a.faults(), "one instant per page fault");
    // Span timestamps are sane: non-negative start, positive duration.
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("dur").unwrap().as_f64().unwrap() > 0.0);
        }
    }
}

#[test]
fn metrics_json_roundtrips_machine_counters() {
    let (run, log) = pathfinder_under(Observe::TracerAndEventLog);
    let log = log.unwrap();
    let doc = metrics_report(
        "pathfinder",
        "Intel+Pascal",
        run.now_ns,
        &run.stats,
        &[],
        None,
        Some(&log.borrow()),
    );
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).expect("metrics report is valid JSON");
    let stats = back.get("stats").unwrap();
    assert_eq!(
        stats.get("gpu_faults").unwrap().as_u64(),
        Some(run.stats.gpu_faults)
    );
    assert_eq!(
        stats.get("kernel_launches").unwrap().as_u64(),
        Some(run.stats.kernel_launches)
    );
    assert_eq!(
        stats.get("bytes_migrated").unwrap().as_u64(),
        Some(run.stats.bytes_migrated)
    );
    assert_eq!(
        stats.get("total_faults").unwrap().as_u64(),
        Some(run.stats.faults())
    );
    // The event digest agrees with the machine too.
    let by_kind = back.get("events").unwrap().get("by_kind").unwrap();
    assert_eq!(
        by_kind.get("kernel_end").and_then(Json::as_u64),
        Some(run.stats.kernel_launches),
        "every launch produced a kernel_end event"
    );
    // And stats_json output is embedded verbatim.
    assert_eq!(
        stats.to_string_compact(),
        Json::parse(&stats_json(&run.stats).to_string_compact())
            .unwrap()
            .to_string_compact()
    );
}

#[test]
fn heatmap_sees_the_workload_and_exports_csv() {
    let mut m = Machine::new(platform::intel_pascal());
    let heat = Rc::new(RefCell::new(HeatmapRecorder::new(m.platform().page_size)));
    m.add_hook(heat.clone());
    let r = run_lulesh(&mut m, LuleshConfig::new(6, 2), LuleshVariant::Baseline);
    assert!(r.check.is_finite());
    let h = heat.borrow();
    assert!(h.alloc_count() > 0, "allocations were registered");
    assert!(h.epoch() > 0, "kernel launches advanced the epoch");
    let csv = h.to_csv();
    assert!(csv.starts_with("alloc,base,page,epoch,accesses\n"));
    assert!(csv.lines().count() > 1, "cells were recorded");
    let art = h.render_ascii();
    assert!(art.contains("page x epoch access heatmap"));
}

#[test]
fn event_timestamps_lie_within_the_simulated_timeline() {
    let mut m = Machine::new(platform::intel_pascal());
    let log = Rc::new(RefCell::new(EventLog::new()));
    m.add_hook(log.clone());
    let _ = run_pathfinder(
        &mut m,
        PathfinderConfig::new(128, 21, 5),
        PathfinderVariant::Baseline,
    );
    // The timeline's full extent: the host clock or the furthest stream
    // tail, whichever reaches later. Events are *recorded* in issue order
    // but *stamped* with simulated completion times, so async completions
    // may carry stamps ahead of later-recorded host events — every stamp
    // must still land inside the simulated range.
    let extent = m.stream_tails().iter().copied().fold(m.now(), f64::max);
    let log = log.borrow();
    assert!(!log.is_empty());
    for ev in log.events() {
        assert!(
            ev.t_ns >= 0.0 && ev.t_ns <= extent + 1e-6,
            "event stamped at {} outside the simulated range [0, {extent}]",
            ev.t_ns
        );
    }
    for &tail in m.stream_tails() {
        assert!(tail >= 0.0 && tail <= extent);
    }
}
