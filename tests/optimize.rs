//! Closed-loop optimizer integration tests (DESIGN.md §17).
//!
//! Three contracts are pinned here:
//!
//! * **Determinism** — the full optimizer report (rendered text and JSON)
//!   is byte-identical for `--jobs 1/2/8` and across repeated runs, and
//!   matches the committed golden under `tests/golden/`.
//! * **Regression guard** — the winning plan for `lulesh` is never worse
//!   than the unhinted baseline, and with the current cost model it is
//!   strictly better.
//! * **Plan application is results-neutral** — applying any
//!   optimizer-enumerated plan (singly or combined) never changes what a
//!   target computes: workload self-checks and final memory bytes, and
//!   generated-program exit/stdout/memory, all match the un-advised run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use hetsim::platform;
use proptest::{Strategy, TestRng};
use xplacer_conformance::generator::ArbProgram;
use xplacer_conformance::{conformance_cases, snapshot};
use xplacer_core::Plan;
use xplacer_lang::unparse::unparse;
use xplacer_optimize::eval::{eval_program, eval_workload};
use xplacer_optimize::{optimize, OptimizeConfig, Target};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}"))
}

fn smoke_cfg(jobs: usize) -> OptimizeConfig {
    let mut cfg = OptimizeConfig::new(platform::intel_pascal());
    cfg.smoke = true;
    cfg.jobs = jobs;
    cfg
}

const PROGRAM: &str = "int main() {\n\
    int* a;\n\
    cudaMallocManaged((void**)&a, 256 * sizeof(int));\n\
    for (int i = 0; i < 256; i++) { a[i] = i; }\n\
    double_all<<<1, 256>>>(a);\n\
    int sum = 0;\n\
    for (int i = 0; i < 256; i++) { sum = sum + a[i]; }\n\
    printf(\"%d\\n\", sum);\n\
    return 0;\n\
}\n\
__global__ void double_all(int* a) {\n\
    int i = threadIdx.x;\n\
    a[i] = a[i] * 2;\n\
}\n";

// =====================================================================
// Determinism + golden + lulesh regression guard.
// =====================================================================

/// The report must not depend on the worker count, and the winning plan
/// must strictly beat the unhinted lulesh baseline (the paper's headline
/// claim, closed-loop).
#[test]
fn optimize_lulesh_is_jobs_invariant_golden_and_improving() {
    let target = Target::Workload("lulesh".into());
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| optimize(&target, &smoke_cfg(jobs)).unwrap())
        .collect();

    let text = reports[0].render();
    let json = reports[0].to_json().to_string_pretty();
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            text,
            r.render(),
            "rendered report differs at jobs index {i}"
        );
        assert_eq!(
            json,
            r.to_json().to_string_pretty(),
            "json report differs at jobs index {i}"
        );
    }

    // Regression guard: never worse, and currently strictly better.
    let r = &reports[0];
    assert!(r.winner_ns <= r.baseline_ns, "winner worse than baseline");
    assert!(
        r.winner_ns < r.baseline_ns,
        "expected a strictly improving plan for lulesh"
    );
    let rec = r.bench_record();
    assert_eq!(rec.name, "optimize_lulesh");
    assert_eq!(rec.simulated_ns.to_bits(), r.winner_ns.to_bits());

    let mut failures = Vec::new();
    for (name, doc) in [
        ("optimize_lulesh.golden", &text),
        ("optimize_lulesh.json.golden", &json),
    ] {
        if let Err(e) = snapshot::check_or_bless(&golden_path(name), doc) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// Same job count, two runs: still byte-identical (no hidden global
/// state). Uses a small program target to keep it cheap.
#[test]
fn optimize_program_repeat_runs_are_identical() {
    let target = Target::Program {
        name: "double_all.cu".into(),
        source: PROGRAM.into(),
    };
    let a = optimize(&target, &smoke_cfg(2)).unwrap();
    let b = optimize(&target, &smoke_cfg(2)).unwrap();
    assert_eq!(a.render(), b.render());
    assert_eq!(
        a.to_json().to_string_pretty(),
        b.to_json().to_string_pretty()
    );
    assert!(a.winner_ns <= a.baseline_ns);
}

// =====================================================================
// Property: applying optimizer plans never changes results.
// =====================================================================

/// Every candidate plan (and the largest compatible combination) applied
/// to every built-in workload leaves the self-check value and the final
/// bytes of every named allocation untouched.
#[test]
fn workload_plans_preserve_results_on_all_workloads() {
    let pf = platform::intel_pascal();
    let mut candidates_seen = 0usize;
    for which in xplacer_workloads::WORKLOAD_NAMES {
        let (base, cands) = eval_workload(which, &pf, &Plan::empty(), true)
            .unwrap_or_else(|e| panic!("{which}: {e}"));
        let cands = cands.unwrap();
        candidates_seen += cands.items.len();
        let mut combined = Plan::empty();
        for c in &cands.items {
            let plan = Plan::empty().with(c.clone());
            let (out, _) = eval_workload(which, &pf, &plan, false)
                .unwrap_or_else(|e| panic!("{which} `{}`: {e}", plan.describe()));
            assert_eq!(
                base.fingerprint,
                out.fingerprint,
                "{which}: plan `{}` changed results",
                plan.describe()
            );
            if combined.allows(c) {
                combined = combined.with(c.clone());
            }
        }
        if combined.items().len() > 1 {
            let (out, _) = eval_workload(which, &pf, &combined, false)
                .unwrap_or_else(|e| panic!("{which} combined: {e}"));
            assert_eq!(
                base.fingerprint,
                out.fingerprint,
                "{which}: combined plan `{}` changed results",
                combined.describe()
            );
        }
    }
    // The managed-memory workloads must actually exercise the property.
    assert!(candidates_seen > 10, "too few candidates enumerated");
}

/// The generated-program half of the property: for `conformance_cases()`
/// random well-typed MiniCU programs, every candidate plan — including
/// advise/prefetch injections and the split-object rewrite — leaves
/// exit code, plain stdout, and the final bytes of every allocation
/// equal to the un-advised run.
#[test]
fn generated_program_plans_preserve_results() {
    let pf = platform::intel_pascal();
    let cases = conformance_cases();
    let no_sites = BTreeMap::new();
    let mut with_candidates = 0u64;
    let mut plans_checked = 0u64;
    for i in 0..cases {
        let mut rng = TestRng::deterministic(&format!("xplacer-optimize-prop-{i}"));
        let prog = ArbProgram.generate(&mut rng);
        let src = unparse(&prog);
        let (base, cands) = eval_program("gen.cu", &src, &pf, &Plan::empty(), &no_sites, true)
            .unwrap_or_else(|e| panic!("case {i} baseline: {e}\n---- program ----\n{src}"));
        let cands = cands.unwrap();
        if cands.items.is_empty() {
            continue;
        }
        with_candidates += 1;
        let mut combined = Plan::empty();
        for c in &cands.items {
            let plan = Plan::empty().with(c.clone());
            let (out, _) = eval_program("gen.cu", &src, &pf, &plan, &cands.site_of_base, false)
                .unwrap_or_else(|e| {
                    panic!(
                        "case {i} plan `{}`: {e}\n---- program ----\n{src}",
                        plan.describe()
                    )
                });
            assert_eq!(
                base.fingerprint,
                out.fingerprint,
                "case {i}: plan `{}` changed program results\n---- program ----\n{src}",
                plan.describe()
            );
            plans_checked += 1;
            if combined.allows(c) {
                combined = combined.with(c.clone());
            }
        }
        if combined.items().len() > 1 {
            let (out, _) = eval_program("gen.cu", &src, &pf, &combined, &cands.site_of_base, false)
                .unwrap_or_else(|e| {
                    panic!(
                        "case {i} combined `{}`: {e}\n---- program ----\n{src}",
                        combined.describe()
                    )
                });
            assert_eq!(
                base.fingerprint,
                out.fingerprint,
                "case {i}: combined plan `{}` changed program results\n---- program ----\n{src}",
                combined.describe()
            );
            plans_checked += 1;
        }
    }
    assert!(
        with_candidates * 4 >= cases,
        "only {with_candidates}/{cases} generated programs were optimizable \
         ({plans_checked} plans checked) — generator or enumeration drifted"
    );
}
