//! End-to-end pipeline tests: MiniCU source → instrumentation → simulated
//! execution → runtime diagnostics → anti-pattern reports, mirroring the
//! developer workflow of paper §III-D.

use xplacer_core::{AccessFlags, Finding, FindingKind};
use xplacer_integration_tests::run_traced;
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;

/// Step (1)-(5) of §III-D on a LULESH-in-miniature program: a domain
/// struct in managed memory, arrays reached through it, a per-step CPU
/// write of a temp pointer, and a diagnostic at the end of each step.
#[test]
fn lulesh_in_miniature_full_workflow() {
    let src = r#"
        struct Domain { double* x; double* e; double* tmp; };

        __global__ void work(Domain* dom, int n) {
            int i = threadIdx.x;
            if (i < n) {
                dom->e[i] = dom->x[i] * 0.5 + dom->tmp[i];
            }
        }

        int main() {
            Domain* dom;
            cudaMallocManaged((void**)&dom, sizeof(Domain));
            double* x;
            double* e;
            cudaMallocManaged((void**)&x, 32 * sizeof(double));
            cudaMallocManaged((void**)&e, 32 * sizeof(double));
            dom->x = x;
            dom->e = e;
            for (int i = 0; i < 32; i++) { dom->x[i] = i; }
            for (int step = 0; step < 2; step++) {
                double* tmp;
                cudaMallocManaged((void**)&tmp, 32 * sizeof(double));
                for (int i = 0; i < 32; i++) { tmp[i] = 0.25; }
                dom->tmp = tmp;
                work<<<1, 32>>>(dom, 32);
                cudaDeviceSynchronize();
                cudaFree(tmp);
        #pragma xpl diagnostic tracePrint(out; dom)
            }
            return (int)dom->e[31];
        }
    "#;
    let (out, interp) = run_traced(src);
    assert_eq!(out.exit, (31.0f64 * 0.5 + 0.25) as i64);

    // Two diagnostic epochs happened, each with a report.
    assert_eq!(interp.reports.len(), 2);
    // Every epoch flags the domain object: the CPU writes the temp
    // pointer, the GPU reads it — the paper's headline finding.
    for report in &interp.reports {
        assert!(
            report
                .for_alloc("dom")
                .any(|f| f.kind() == FindingKind::Alternating),
            "missing domain alternating finding: {report}"
        );
    }
    // The textual output contains the expanded member names.
    assert!(out.stdout.contains("dom->x"), "{}", out.stdout);
    assert!(out.stdout.contains("dom->e"), "{}", out.stdout);
    // Page traffic happened: domain bounced between processors.
    assert!(out.stats.migrations() > 4);
}

/// The instrumented source itself is valid MiniCU: unparse → reparse →
/// instrument again without error, and a second instrumentation does not
/// double-wrap accesses.
#[test]
fn instrumented_source_is_stable() {
    let src = r#"
        __global__ void k(double* p, int n) {
            int i = threadIdx.x;
            if (i < n) { p[i] = p[i] + 1.0; }
        }
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 64);
            k<<<1, 8>>>(p, 8);
            return 0;
        }
    "#;
    let once = xplacer_instrument::instrument(&parse(src).unwrap()).program;
    let text1 = unparse(&once);
    let twice = xplacer_instrument::instrument(&parse(&text1).unwrap()).program;
    let text2 = unparse(&twice);
    // traceR(...) is a call; calls are not l-values, so no re-wrapping.
    assert!(!text2.contains("traceR(traceR"), "{text2}");
    assert!(!text2.contains("traceW(traceW"), "{text2}");
}

/// The shadow flags recorded by the interpreter's trace calls agree with
/// what the program actually did.
#[test]
fn shadow_flags_match_program_behaviour() {
    let src = r#"
        __global__ void consume(double* src, double* dst, int n) {
            int i = threadIdx.x;
            if (i < n) { dst[i] = src[i]; }
        }
        int main() {
            double* src;
            double* dst;
            cudaMallocManaged((void**)&src, 8 * sizeof(double));
            cudaMallocManaged((void**)&dst, 8 * sizeof(double));
            for (int i = 0; i < 8; i++) { src[i] = i; }
            consume<<<1, 8>>>(src, dst, 8);
            cudaDeviceSynchronize();
            double check = dst[7];
            return (int)check;
        }
    "#;
    let (out, interp) = run_traced(src);
    assert_eq!(out.exit, 7);

    let src_entry = interp
        .tracer
        .smt
        .iter()
        .find(|e| {
            e.shadow
                .iter()
                .any(|w| w.get(AccessFlags::CPU_WROTE) && w.get(AccessFlags::R_CG))
        })
        .expect("src: CPU-written, GPU-read");
    assert_eq!(src_entry.size, 64);

    let dst_entry = interp
        .tracer
        .smt
        .iter()
        .find(|e| {
            e.shadow
                .iter()
                .any(|w| w.get(AccessFlags::GPU_WROTE) && w.get(AccessFlags::R_GC))
        })
        .expect("dst: GPU-written, CPU-read");
    assert_ne!(dst_entry.base, src_entry.base);
}

/// Paper §III-C: untracked addresses are ignored — a program mixing
/// traced and untraced allocations only records the traced ones.
#[test]
fn partially_traced_program() {
    // `data` is allocated before the instrumented region would see it:
    // simulate by using an address the tracer never learned about — the
    // `new` in an uninstrumented helper is still traced in our pipeline,
    // so instead check that *plain* runs record nothing at all.
    let src = r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 64);
            p[0] = 1.0;
            return 0;
        }
    "#;
    let (_, interp) =
        xplacer_interp::run_source(src, xplacer_integration_tests::test_platform(), false).unwrap();
    assert_eq!(interp.tracer.tracked(), 0);
}

/// The three platforms produce identical program *results* — the cost
/// model never changes semantics.
#[test]
fn platforms_affect_time_not_results() {
    let src = r#"
        __global__ void axpy(double* x, double* y, int n) {
            int i = threadIdx.x;
            if (i < n) { y[i] = 2.0 * x[i] + y[i]; }
        }
        int main() {
            double* x;
            double* y;
            cudaMallocManaged((void**)&x, 16 * sizeof(double));
            cudaMallocManaged((void**)&y, 16 * sizeof(double));
            for (int i = 0; i < 16; i++) { x[i] = i; y[i] = 1.0; }
            axpy<<<1, 16>>>(x, y, 16);
            cudaDeviceSynchronize();
            double s = 0.0;
            for (int i = 0; i < 16; i++) { s += y[i]; }
            return (int)s;
        }
    "#;
    let mut exits = Vec::new();
    let mut times = Vec::new();
    for pf in hetsim::platform::all_platforms() {
        let (out, _) = xplacer_interp::run_source(src, pf, true).unwrap();
        exits.push(out.exit);
        times.push(out.elapsed_ns);
    }
    assert!(exits.iter().all(|&e| e == exits[0]));
    // The NVLink platform is the cheapest for this ping-free program's
    // migrations... at minimum, times differ across platforms.
    assert!(times[0] != times[2]);
}

/// Diagnostic output from the interpreter matches the library-level
/// formatting (same renderer, same numbers).
#[test]
fn trace_print_uses_fig4_format() {
    let src = r#"
        int main() {
            int* z;
            cudaMallocManaged((void**)&z, 4 * sizeof(int));
            z[0] = 1;
            z[1] = 2;
            int s = z[0] + z[1];
        #pragma xpl diagnostic tracePrint(out; z)
            return s;
        }
    "#;
    let (out, _) = run_traced(src);
    assert_eq!(out.exit, 3);
    assert!(out.stdout.contains("*** checking 1 named allocations"));
    assert!(out.stdout.contains("write counts"));
    // z: two words CPU-written, both read back: C>C = 2.
    let line = out
        .stdout
        .lines()
        .find(|l| l.trim_start().starts_with('2'))
        .unwrap_or("");
    assert!(line.contains('2'), "{}", out.stdout);
    assert!(
        out.stdout.contains("access density (in %): 50"),
        "{}",
        out.stdout
    );
}

/// Errors in the simulated program surface as runtime errors with the
/// simulator's diagnosis (not tool crashes).
#[test]
fn program_bugs_are_diagnosed() {
    let oob = r#"
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 4 * sizeof(int));
            return p[100];
        }
    "#;
    let e = xplacer_interp::run_source(oob, xplacer_integration_tests::test_platform(), true)
        .map(|_| ())
        .unwrap_err();
    assert!(
        e.message.contains("unallocated") || e.message.contains("out of bounds"),
        "{e}"
    );
}

/// Replaced functions and kernel wrappers cooperate: a program carrying
/// its own `#pragma xpl replace` wrappers runs and traces.
#[test]
fn custom_replacement_pragmas_run() {
    let src = r#"
        #pragma xpl replace kernel-launch
        void traceKernelLaunch(int grd, int blk, char* kernel);

        __global__ void fill(int* p, int n) {
            int i = threadIdx.x;
            if (i < n) { p[i] = 7; }
        }
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 8 * sizeof(int));
            fill<<<1, 8>>>(p, 8);
            return p[3];
        }
    "#;
    let (out, interp) = run_traced(src);
    assert_eq!(out.exit, 7);
    assert_eq!(interp.tracer.kernel_log, vec!["fill".to_string()]);
}

/// A finding's `Display` and the report text agree with the detector
/// enums across the pipeline (smoke for API stability).
#[test]
fn findings_round_trip_through_reports() {
    let src = r#"
        __global__ void noop(int* p) { int i = threadIdx.x; if (i < 0) { p[0] = 1; } }
        int main() {
            int* host = (int*)malloc(1024);
            int* dev;
            cudaMalloc((void**)&dev, 1024);
            for (int i = 0; i < 256; i++) { host[i] = i; }
            cudaMemcpy(dev, host, 1024, cudaMemcpyHostToDevice);
            noop<<<1, 1>>>(dev);
        #pragma xpl diagnostic tracePrint(out; dev)
            return 0;
        }
    "#;
    let (_, interp) = run_traced(src);
    let report = &interp.reports[0];
    let transferred: Vec<&Finding> = report.of_kind(FindingKind::UnnecessaryTransfer).collect();
    assert!(
        transferred
            .iter()
            .any(|f| matches!(f, Finding::TransferredNeverAccessed { len_words: 256, .. })),
        "{report}"
    );
}
