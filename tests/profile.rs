//! Attribution conservation across every built-in workload.
//!
//! The cost-attribution profiler is only trustworthy if it loses
//! nothing: with a ring deep enough to hold the whole run, the counter
//! totals reconstructed from the attributed event stream must equal
//! `Machine::stats()` *exactly* — same faults, same migrations, same
//! bytes — for every workload shape the repo ships (managed-memory
//! faulting, explicit device memcpy, streams + prefetch, read-mostly
//! duplication). A profiler that undercounts by one page fault would
//! silently misattribute cost, so these are equality assertions, not
//! tolerances.
//!
//! The workloads are driven through `setup`/`run`/`check` directly (the
//! `run_*` one-shot helpers reset the machine counters mid-run, which
//! would make `Machine::stats()` disagree with the full event stream by
//! construction).

use std::cell::RefCell;
use std::rc::Rc;

use hetsim::{platform, EventLog, Machine};
use xplacer_obs::flamegraph::folded_stacks;
use xplacer_obs::profile::{ProfileReport, HOST_KERNEL};
use xplacer_workloads as w;

const WORKLOADS: &[&str] = &[
    "lulesh",
    "sw",
    "pathfinder",
    "backprop",
    "gaussian",
    "lud",
    "nn",
    "cfd",
];

/// Run one workload (small config) on a fresh pascal machine with a
/// deep event ring attached; return the machine, the log, and the
/// allocation-name table.
fn run_workload(which: &str) -> (Machine, EventLog, Vec<(hetsim::Addr, String)>) {
    let mut m = Machine::new(platform::intel_pascal());
    let log = Rc::new(RefCell::new(EventLog::with_capacity(1 << 21)));
    m.add_hook(log.clone());
    let names: Vec<(hetsim::Addr, String)> = match which {
        "lulesh" => {
            let cfg = w::lulesh::LuleshConfig::new(6, 3);
            let mut l = w::lulesh::Lulesh::setup(&mut m, cfg, w::lulesh::LuleshVariant::Baseline);
            let names = l.names();
            l.run(&mut m, cfg.steps, |_, _| {});
            let _ = l.check(&mut m);
            names
        }
        "sw" => {
            let cfg = w::smith_waterman::SwConfig::square(64);
            let mut s = w::smith_waterman::SmithWaterman::setup(
                &mut m,
                cfg,
                w::smith_waterman::SwVariant::Baseline,
            );
            let names = s.names();
            s.run(&mut m, |_, _| {});
            names
        }
        "pathfinder" => {
            let cfg = w::rodinia::pathfinder::PathfinderConfig::new(256, 51, 10);
            let mut p = w::rodinia::pathfinder::Pathfinder::setup(
                &mut m,
                cfg,
                w::rodinia::pathfinder::PathfinderVariant::Baseline,
            );
            let names = p.names();
            p.run(&mut m, |_, _| {});
            let _ = p.check(&mut m);
            names
        }
        "backprop" => {
            let mut b = w::rodinia::backprop::Backprop::setup(
                &mut m,
                w::rodinia::backprop::BackpropConfig::new(256),
            );
            let names = b.names();
            b.run(&mut m);
            names
        }
        "gaussian" => {
            let mut g = w::rodinia::gaussian::Gaussian::setup(
                &mut m,
                w::rodinia::gaussian::GaussianConfig::new(24),
            );
            let names = g.names();
            g.run(&mut m);
            names
        }
        "lud" => {
            let mut l = w::rodinia::lud::Lud::setup(&mut m, w::rodinia::lud::LudConfig::new(24));
            let names = l.names();
            l.run(&mut m, |_, _| {});
            let _ = l.check(&mut m);
            names
        }
        "nn" => {
            let mut n = w::rodinia::nn::Nn::setup(&mut m, w::rodinia::nn::NnConfig::new(512));
            let names = n.names();
            n.run(&mut m);
            names
        }
        "cfd" => {
            let mut c =
                w::rodinia::cfd::Cfd::setup(&mut m, w::rodinia::cfd::CfdConfig::new(256, 4));
            let names = c.names();
            c.run(&mut m);
            names
        }
        other => panic!("unknown workload {other}"),
    };
    let log = log.borrow().clone();
    (m, log, names)
}

/// Every counter the profiler reconstructs from the stream equals the
/// machine's own accounting, per workload, exactly.
#[test]
fn profile_totals_conserve_machine_stats_for_every_workload() {
    for which in WORKLOADS {
        let (mut m, log, names) = run_workload(which);
        assert_eq!(log.dropped(), 0, "{which}: ring must hold the whole run");
        let elapsed = m.elapsed_ns();
        let p = ProfileReport::build(which, "intel_pascal", elapsed, &log, &names);
        let s = &m.stats;
        assert_eq!(p.totals.faults, s.faults(), "{which}: faults");
        assert_eq!(p.totals.migrations, s.migrations(), "{which}: migrations");
        assert_eq!(
            p.totals.bytes_migrated, s.bytes_migrated,
            "{which}: bytes_migrated"
        );
        assert_eq!(
            p.totals.memcpy_bytes, s.memcpy_bytes,
            "{which}: memcpy_bytes"
        );
        assert_eq!(
            p.totals.duplications, s.duplications,
            "{which}: duplications"
        );
        assert_eq!(
            p.totals.invalidations, s.invalidations,
            "{which}: invalidations"
        );
        assert_eq!(p.totals.evictions, s.evictions, "{which}: evictions");
        assert_eq!(p.totals.allocs, s.allocs, "{which}: allocs");
        assert_eq!(p.totals.frees, s.frees, "{which}: frees");
        assert_eq!(
            p.kernel_launches, s.kernel_launches,
            "{which}: kernel launches"
        );
    }
}

/// Per-kernel rows partition the totals: summing every kernel row (host
/// included) gives back the run totals — no event is double-counted or
/// orphaned by the grouping.
#[test]
fn per_kernel_rows_partition_the_totals() {
    for which in WORKLOADS {
        let (mut m, log, names) = run_workload(which);
        let elapsed = m.elapsed_ns();
        let p = ProfileReport::build(which, "intel_pascal", elapsed, &log, &names);
        let (mut faults, mut migrations, mut bytes) = (0u64, 0u64, 0u64);
        let mut cost_ns = 0.0;
        for k in &p.kernels {
            faults += k.costs.faults;
            migrations += k.costs.migrations;
            bytes += k.costs.bytes_migrated;
            cost_ns += k.costs.cost_ns;
        }
        assert_eq!(faults, p.totals.faults, "{which}: kernel faults partition");
        assert_eq!(
            migrations, p.totals.migrations,
            "{which}: kernel migrations partition"
        );
        assert_eq!(
            bytes, p.totals.bytes_migrated,
            "{which}: kernel bytes partition"
        );
        assert!(
            (cost_ns - p.totals.cost_ns).abs() < 1e-6,
            "{which}: kernel cost partition ({cost_ns} vs {})",
            p.totals.cost_ns
        );
    }
}

/// The acceptance scenario: profiling pathfinder names the allocation
/// with the most moved bytes (the device wall array fed by the bulk H2D
/// copy), with a human label, not a bare address.
#[test]
fn pathfinder_profile_names_the_hottest_allocation() {
    let (mut m, log, names) = run_workload("pathfinder");
    let elapsed = m.elapsed_ns();
    let p = ProfileReport::build("pathfinder", "intel_pascal", elapsed, &log, &names);
    let hot = p.hottest_alloc().expect("pathfinder moves data");
    assert_eq!(hot.label, "gpuWall", "bulk H2D copy target ranks first");
    assert!(hot.costs.bytes_moved() > 0);
    let table = p.render_table(5);
    assert!(
        table.contains("gpuWall"),
        "table names the hot allocation:\n{table}"
    );
}

/// An empty event log folds to an empty-but-valid profile and an empty
/// folded-stacks file — exporters never panic on "nothing happened".
#[test]
fn empty_event_log_yields_empty_but_valid_outputs() {
    let log = EventLog::new();
    let p = ProfileReport::build("nothing", "intel_pascal", 0.0, &log, &[]);
    assert!(p.kernels.is_empty());
    assert!(p.allocs.is_empty());
    assert_eq!(p.totals.faults, 0);
    assert_eq!(p.events_recorded, 0);
    let table = p.render_table(10);
    assert!(table.contains("(none)"), "placeholder rows:\n{table}");
    let json = p.to_json().to_string_pretty();
    assert!(json.contains("xplacer-profile/1"));
    assert_eq!(folded_stacks("intel_pascal", &log, &[]), "");
}

/// Kernel attribution is real: every workload attributes at least one
/// event to a non-host kernel context, and the folded stacks carry the
/// kernel frames.
#[test]
fn kernel_context_attribution_is_present() {
    for which in WORKLOADS {
        let (mut m, log, names) = run_workload(which);
        let elapsed = m.elapsed_ns();
        let p = ProfileReport::build(which, "intel_pascal", elapsed, &log, &names);
        assert!(
            p.kernels.iter().any(|k| k.name != HOST_KERNEL),
            "{which}: kernel rows present"
        );
        let folded = folded_stacks("intel_pascal", &log, &names);
        assert!(
            folded
                .lines()
                .any(|l| !l.starts_with(&format!("intel_pascal;{HOST_KERNEL}"))),
            "{which}: kernel frames in folded stacks"
        );
    }
}
