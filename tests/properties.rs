//! Property-based tests over the core invariants of the reproduction,
//! spanning crates: SMT lookup correctness, shadow-flag algebra, the UM
//! driver's coherence invariants, layout equivalence of the optimized
//! workload variants, and instrumentation round-trips.

use proptest::prelude::*;

use hetsim::gpumem::{EvictionPolicy, GpuMemory};
use hetsim::platform::intel_pascal;
use hetsim::unified::UmDriver;
use hetsim::{AllocKind, Device, Machine, Stats};
use xplacer_core::{AccessFlags, Smt};

// ----------------------------------------------------------------------
// SMT
// ----------------------------------------------------------------------

/// Model: the SMT's (linear or binary) lookup must agree with a plain
/// scan over the live ranges, under arbitrary alloc/free interleavings.
fn smt_against_model(ops: Vec<(u64, u64, bool)>, probes: Vec<u64>, threshold: usize) {
    let mut smt = Smt::new();
    smt.linear_threshold = threshold;
    let mut model: Vec<(u64, u64, bool)> = Vec::new(); // (base, size, live)
    let mut next_base = 0x10_0000u64;
    for (size, _, free_one) in ops {
        let size = size % 4096 + 1;
        if free_one && !model.is_empty() {
            // Free the oldest live allocation.
            if let Some(e) = model.iter_mut().find(|e| e.2) {
                e.2 = false;
                assert!(smt.remove_defer(e.0));
            }
        } else {
            smt.insert(next_base, size, AllocKind::Managed);
            model.push((next_base, size, true));
            next_base += size.div_ceil(64) * 64 + 64;
        }
    }
    for p in probes {
        let addr = 0x10_0000 + p % (next_base - 0x10_0000 + 1024);
        let got = smt.lookup(addr).map(|e| e.base);
        // Deferred-free entries stay visible until purge, so the model
        // matches any entry (live or deferred).
        let want = model
            .iter()
            .find(|(b, s, _)| addr >= *b && addr < b + s)
            .map(|(b, _, _)| *b);
        assert_eq!(got, want, "probe 0x{addr:x}");
    }
    // Purge removes exactly the dead entries.
    let live_before = model.iter().filter(|e| e.2).count();
    smt.purge_dead();
    assert_eq!(smt.iter().count(), live_before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smt_lookup_matches_model_linear(
        ops in proptest::collection::vec((0u64..4096, 0u64..4, any::<bool>()), 1..40),
        probes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        smt_against_model(ops, probes, usize::MAX);
    }

    #[test]
    fn smt_lookup_matches_model_binary(
        ops in proptest::collection::vec((0u64..4096, 0u64..4, any::<bool>()), 1..40),
        probes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        smt_against_model(ops, probes, 0);
    }

    // ------------------------------------------------------------------
    // Shadow flag algebra
    // ------------------------------------------------------------------

    /// Under any access sequence: the flags stay in 7 bits, `alternating`
    /// implies both sides touched plus a write, and read categories are
    /// consistent with the most recent writer at read time.
    #[test]
    fn access_flags_invariants(ops in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..64)) {
        let mut f = AccessFlags::new();
        let mut last_writer_gpu = false;
        let mut wrote = false;
        for (is_write, is_gpu) in ops {
            let dev = if is_gpu { Device::GPU0 } else { Device::Cpu };
            if is_write {
                f.record_write(dev);
                last_writer_gpu = is_gpu;
                wrote = true;
            } else {
                f.record_read(dev);
                // The read category must reflect the model's last writer.
                let bit = match (last_writer_gpu, is_gpu) {
                    (false, false) => AccessFlags::R_CC,
                    (false, true) => AccessFlags::R_CG,
                    (true, false) => AccessFlags::R_GC,
                    (true, true) => AccessFlags::R_GG,
                };
                prop_assert!(f.get(bit));
            }
            prop_assert_eq!(f.0 & !AccessFlags::ALL, 0, "stray bits");
            prop_assert_eq!(f.get(AccessFlags::LAST_WRITER_GPU), wrote && last_writer_gpu);
            if f.alternating() {
                prop_assert!(f.cpu_accessed() && f.gpu_accessed() && f.written());
            }
        }
        // Epoch reset clears everything but the origin.
        let origin = f.get(AccessFlags::LAST_WRITER_GPU);
        f.reset_epoch();
        prop_assert!(!f.touched());
        prop_assert_eq!(f.get(AccessFlags::LAST_WRITER_GPU), origin);
    }

    // ------------------------------------------------------------------
    // Unified-memory driver
    // ------------------------------------------------------------------

    /// Coherence invariants under random access sequences: the owner
    /// always holds a copy, copies are never empty, a device never has
    /// both a copy and a mapping, and GPU residency never exceeds
    /// capacity.
    #[test]
    fn um_driver_invariants(
        accesses in proptest::collection::vec((0u64..8, any::<bool>(), any::<bool>()), 1..200),
        read_mostly in any::<bool>(),
        capacity_pages in 1u64..6,
    ) {
        let pf = intel_pascal();
        let mut drv = UmDriver::new(pf.page_size);
        let mut gpus = vec![GpuMemory::with_policy(
            capacity_pages * pf.page_size,
            pf.page_size,
            EvictionPolicy::Fifo,
        )];
        let mut stats = Stats::default();
        let base = hetsim::alloc::HEAP_BASE;
        drv.register_alloc(base, 8 * pf.page_size, true);
        if read_mostly {
            drv.advise(base, 8 * pf.page_size, hetsim::MemAdvise::SetReadMostly);
        }
        let base_page = base / pf.page_size;
        for (page, write, gpu) in accesses {
            let dev = if gpu { Device::GPU0 } else { Device::Cpu };
            let _ = drv.access(&pf, &mut gpus, &mut stats, dev, base_page + page, write);
            for p in 0..8 {
                let st = drv.state(base_page + p);
                prop_assert!(st.copies.contains(st.owner), "owner must hold a copy");
                prop_assert!(!st.copies.is_empty());
                prop_assert!(
                    !(st.copies.contains(Device::GPU0) && st.mapped.contains(Device::GPU0)),
                    "copy and mapping are exclusive"
                );
            }
            prop_assert!(gpus[0].len() <= capacity_pages);
        }
        // Fault accounting: every fault is a migration, duplication, or
        // mapping establishment.
        prop_assert!(
            stats.faults() <= stats.migrations() + stats.duplications + stats.remote_accesses,
        );
    }

    // ------------------------------------------------------------------
    // Workload equivalences
    // ------------------------------------------------------------------

    /// Smith-Waterman: the rotated (diagonal-major) variant computes the
    /// exact same score matrix as the baseline for arbitrary shapes.
    #[test]
    fn sw_rotated_equals_baseline(n in 1usize..24, m in 1usize..24, seed in 0u64..1000) {
        use xplacer_workloads::smith_waterman::*;
        let cfg = SwConfig { n, m, seed };
        let mut m1 = Machine::new(intel_pascal());
        let r1 = run_sw(&mut m1, cfg, SwVariant::Baseline);
        let mut m2 = Machine::new(intel_pascal());
        let r2 = run_sw(&mut m2, cfg, SwVariant::Rotated);
        prop_assert_eq!(r1.check, r2.check);
        // And both match the plain-Rust reference.
        let a = gen_sequence(cfg.n, cfg.seed);
        let b = gen_sequence(cfg.m, cfg.seed ^ 0xABCD);
        prop_assert_eq!(r1.check as i32, cpu_reference(&a, &b));
    }

    /// Pathfinder: both transfer strategies compute the reference DP for
    /// arbitrary shapes.
    #[test]
    fn pathfinder_variants_match_reference(
        cols in 4usize..40,
        rows in 2usize..20,
        pyramid in 1usize..8,
    ) {
        use xplacer_workloads::rodinia::pathfinder::*;
        let cfg = PathfinderConfig::new(cols, rows, pyramid);
        let wall = gen_wall(rows, cols, 7);
        let want: i64 = cpu_reference(&wall, rows, cols).iter().map(|&v| v as i64).sum();
        for v in [PathfinderVariant::Baseline, PathfinderVariant::Overlapped] {
            let mut m = Machine::new(intel_pascal());
            let r = run_pathfinder(&mut m, cfg, v);
            prop_assert_eq!(r.check as i64, want);
        }
    }

    // ------------------------------------------------------------------
    // Instrumentation round-trips
    // ------------------------------------------------------------------

    /// Random straight-line programs over a pointer: instrument →
    /// unparse → parse → instrument is stable, and the traced run
    /// computes the same result as the plain run.
    #[test]
    fn instrumentation_preserves_semantics(ops in proptest::collection::vec((0u8..5, 0usize..8, -4i64..5), 1..20)) {
        let mut body = String::new();
        for (op, idx, val) in ops {
            body.push_str(&match op {
                0 => format!("p[{idx}] = {val};\n"),
                1 => format!("p[{idx}] += {val};\n"),
                2 => format!("(p[{idx}])++;\n"),
                3 => format!("acc = acc + p[{idx}];\n"),
                _ => format!("p[{idx}] = p[{}] + 1;\n", (idx + 1) % 8),
            });
        }
        let src = format!(
            "int main() {{\n int* p;\n cudaMallocManaged((void**)&p, 8 * sizeof(int));\n \
             int acc = 0;\n {body} int s = acc;\n \
             for (int i = 0; i < 8; i++) {{ s += p[i]; }}\n return s; }}"
        );
        let pf = intel_pascal;
        let (plain, _) = xplacer_interp::run_source(&src, pf(), false).unwrap();
        let (traced, _) = xplacer_interp::run_source(&src, pf(), true).unwrap();
        prop_assert_eq!(plain.exit, traced.exit);

        // Pass stability.
        let prog = xplacer_lang::parser::parse(&src).unwrap();
        let once = xplacer_instrument::instrument(&prog).program;
        let text = xplacer_lang::unparse::unparse(&once);
        let reparsed = xplacer_lang::parser::parse(&text).unwrap();
        let twice = xplacer_instrument::instrument(&reparsed).program;
        prop_assert_eq!(once, twice);
    }

    /// Expression unparse/parse round-trip over a generated grammar.
    #[test]
    fn expr_roundtrip(depth_seed in 0u64..10_000) {
        let e = gen_expr(depth_seed, 3);
        let text = xplacer_lang::unparse::unparse_expr(&e);
        let back = xplacer_lang::parser::parse_expr(&text)
            .unwrap_or_else(|err| panic!("`{text}`: {err}"));
        prop_assert_eq!(e, back);
    }
}

/// Tiny deterministic expression generator (structured by a seed).
fn gen_expr(seed: u64, depth: u8) -> xplacer_lang::Expr {
    use xplacer_lang::ast::*;
    let s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    if depth == 0 {
        return match s % 3 {
            0 => Expr::IntLit((s % 100) as i64),
            1 => Expr::ident("x"),
            _ => Expr::ident("p"),
        };
    }
    let a = Box::new(gen_expr(s ^ 0x1111, depth - 1));
    let b = Box::new(gen_expr(s ^ 0x2222, depth - 1));
    match s % 7 {
        0 => Expr::Binary(BinOp::Add, a, b),
        1 => Expr::Binary(BinOp::Mul, a, b),
        2 => Expr::Index(Box::new(Expr::ident("p")), a),
        3 => Expr::Unary(UnOp::Deref, Box::new(Expr::ident("p"))),
        4 => Expr::Cond(a, b, Box::new(Expr::IntLit(0))),
        5 => Expr::Call("f".into(), vec![*a, *b]),
        _ => Expr::Binary(BinOp::Lt, a, b),
    }
}

#[test]
fn density_blocks_partition_the_allocation() {
    // Block densities weighted by block length must equal the whole-
    // allocation density (plain test; the partition is deterministic).
    use hetsim::MemHook;
    let mut tracer = xplacer_core::Tracer::new();
    tracer.on_alloc(0x10_0000, 1000, AllocKind::Managed);
    for w in [0usize, 3, 7, 100, 101, 102, 249] {
        tracer.trace_w(Device::Cpu, 0x10_0000 + (w as u64) * 4, 4);
    }
    let e = tracer.smt.lookup(0x10_0000).unwrap();
    let whole = xplacer_core::antipattern::density::density(e);
    for bs in [1usize, 7, 32, 250, 1000] {
        let blocks = xplacer_core::antipattern::density::block_densities(e, bs);
        let weighted: f64 = blocks
            .iter()
            .map(|(off, d)| d * ((e.words() - off).min(bs) as f64))
            .sum();
        assert!(
            (weighted / e.words() as f64 - whole).abs() < 1e-12,
            "block size {bs}"
        );
    }
}
