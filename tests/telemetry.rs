//! Streaming telemetry, online episode detection, and the `xplacer top`
//! dashboard pipeline, end to end.
//!
//! Four properties pin the layer down:
//!
//! * **Purity** — attaching the full telemetry stack (time-series
//!   bucketing, online analyzer, metered event ring) may not change a
//!   single simulated nanosecond, counter, or workload result.
//! * **Determinism** — identical runs produce byte-identical event
//!   traces, time-series JSON, and dashboard frames.
//! * **Conservation** — hierarchical downsampling may merge buckets but
//!   every counter's sum must equal the machine's own totals exactly.
//! * **Detection** — a workload that actually ping-pongs yields an
//!   episode with a nonzero span and attributed cost, visible in both
//!   the JSON and the rendered dashboard.
//!
//! The committed dashboard snapshots under `tests/golden/` are the
//! byte-exact contract of `xplacer top --replay --frames 3 --ascii`;
//! regenerate with `XPLACER_BLESS=1`.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use hetsim::{platform, EventLog, Machine, MeteredHook, Stats};
use xplacer_conformance::snapshot::check_or_bless;
use xplacer_core::{EpisodeKind, OnlineConfig};
use xplacer_obs::dashboard::{replay, DashOpts, ReplayOutcome};
use xplacer_obs::events::{events_json, EventTrace};
use xplacer_obs::timeseries::{timeseries_json, TelemetryConfig};
use xplacer_obs::{events_from_json, Json};
use xplacer_workloads::lulesh::{run_lulesh, Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::rodinia::pathfinder::{run_pathfinder, PathfinderConfig, PathfinderVariant};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}"))
}

/// Run `work` with tracer + deep event ring attached and package the
/// stream as the same in-memory trace `xplacer top` records live.
fn record(name: &str, work: impl FnOnce(&mut Machine)) -> (EventTrace, Stats) {
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::with_capacity(1 << 21)));
    m.add_hook(log.clone());
    work(&mut m);
    let names: Vec<(u64, String)> = xplacer_core::summarize(&tracer.borrow().smt, false)
        .into_iter()
        .map(|s| (s.base, s.name))
        .collect();
    let elapsed = m.elapsed_ns();
    let log = log.borrow();
    let trace = EventTrace {
        workload: name.to_string(),
        platform_name: m.platform().name.to_string(),
        page_size: m.platform().page_size,
        link_bw: m.platform().link_bw,
        elapsed_ns: elapsed,
        recorded: log.total_recorded(),
        dropped: log.dropped(),
        names,
        events: log.events().cloned().collect(),
    };
    (trace, m.stats.clone())
}

fn lulesh_trace() -> (EventTrace, Stats) {
    record("lulesh", |m| {
        let _ = run_lulesh(m, LuleshConfig::new(6, 4), LuleshVariant::Baseline);
    })
}

fn pathfinder_trace() -> (EventTrace, Stats) {
    record("pathfinder", |m| {
        let _ = run_pathfinder(
            m,
            PathfinderConfig::new(256, 51, 10),
            PathfinderVariant::Baseline,
        );
    })
}

/// A managed array touched by the CPU between every GPU kernel: the
/// canonical ping-pong the online analyzer exists to catch.
fn ping_pong_trace() -> (EventTrace, Stats) {
    record("ping-pong-synthetic", |m| {
        let p = m.alloc_managed::<f64>(16);
        for round in 0..8 {
            m.st(p, 0, round as f64);
            m.launch("bounce", 1, |_, m| {
                let _ = m.ld(p, 0);
            });
        }
    })
}

fn replay3(trace: &EventTrace) -> ReplayOutcome {
    let opts = DashOpts {
        ascii: true,
        ..DashOpts::default()
    };
    replay(
        trace,
        TelemetryConfig::default(),
        OnlineConfig::default(),
        3,
        &opts,
    )
}

// ----------------------------------------------------------------------
// Purity
// ----------------------------------------------------------------------

#[test]
fn telemetry_stack_does_not_perturb_the_simulation() {
    let run = |observed: bool| {
        let mut m = Machine::new(platform::intel_pascal());
        if observed {
            let _t = xplacer_core::attach_tracer(&mut m);
            let link_bw = m.platform().link_bw;
            m.add_hook(Rc::new(RefCell::new(xplacer_obs::Telemetry::new(
                TelemetryConfig::default(),
                link_bw,
            ))));
            m.add_hook(Rc::new(RefCell::new(xplacer_core::OnlineAnalyzer::new(
                OnlineConfig::default(),
            ))));
            let (metered, _meter) = MeteredHook::new(Rc::new(RefCell::new(EventLog::new())));
            m.add_hook(Rc::new(RefCell::new(metered)));
        }
        let out = run_lulesh(&mut m, LuleshConfig::new(6, 4), LuleshVariant::Baseline);
        (m.now(), m.stats.clone(), out.check)
    };
    assert_eq!(
        run(false),
        run(true),
        "telemetry + analyzer + metered ring changed the simulation"
    );
}

// ----------------------------------------------------------------------
// Determinism
// ----------------------------------------------------------------------

#[test]
fn event_trace_and_timeseries_are_byte_identical_across_runs() {
    let (a, _) = lulesh_trace();
    let (b, _) = lulesh_trace();
    let ra = replay3(&a);
    let rb = replay3(&b);
    assert_eq!(ra.frames, rb.frames, "dashboard frames diverged");
    let ja = timeseries_json(&ra.telemetry, &a.workload, &a.platform_name, &ra.episodes)
        .to_string_pretty();
    let jb = timeseries_json(&rb.telemetry, &b.workload, &b.platform_name, &rb.episodes)
        .to_string_pretty();
    assert_eq!(ja, jb, "timeseries JSON diverged");
}

#[test]
fn replay_from_exported_json_matches_replay_from_memory() {
    // Recorded without `run_lulesh`'s untimed-warmup clock reset: a
    // serialized trace must hold one monotonic clock epoch per stream,
    // and `EventTrace::parse` now rejects anything else.
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::with_capacity(1 << 21)));
    m.add_hook(log.clone());
    let cfg = LuleshConfig::new(6, 4);
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    l.run(&mut m, cfg.steps, |_, _| {});
    let allocs = xplacer_core::summarize(&tracer.borrow().smt, false);
    let elapsed = m.elapsed_ns();
    let text =
        events_json(&log.borrow(), "lulesh", elapsed, m.platform(), &allocs).to_string_pretty();

    let parsed = events_from_json(&Json::parse(&text).unwrap()).unwrap();
    let direct = EventTrace {
        workload: "lulesh".to_string(),
        platform_name: m.platform().name.to_string(),
        page_size: m.platform().page_size,
        link_bw: m.platform().link_bw,
        elapsed_ns: elapsed,
        recorded: log.borrow().total_recorded(),
        dropped: log.borrow().dropped(),
        names: allocs.iter().map(|a| (a.base, a.name.clone())).collect(),
        events: log.borrow().events().cloned().collect(),
    };
    assert_eq!(parsed.events.len(), direct.events.len());
    assert_eq!(
        replay3(&parsed).frames,
        replay3(&direct).frames,
        "a round-trip through events.json changed the dashboard"
    );
}

// ----------------------------------------------------------------------
// Conservation
// ----------------------------------------------------------------------

#[test]
fn downsampled_series_conserve_the_machine_totals() {
    // `run_lulesh` resets the machine counters after setup, so the stats
    // cross-check lives on the synthetic trace below; here the machine
    // totals are derived from the full event stream itself.
    let (trace, _) = lulesh_trace();
    // A tiny bucket cap over a fine epoch forces many halving rounds.
    let cfg = TelemetryConfig {
        epoch_ns: 256.0,
        max_buckets: 8,
    };
    let out = replay(
        &trace,
        cfg,
        OnlineConfig::default(),
        1,
        &DashOpts {
            ascii: true,
            ..DashOpts::default()
        },
    );
    let t = &out.telemetry;
    assert!(t.downsamples > 0, "cap of 8 must force downsampling");
    assert!(t.global().len() <= 8);
    let totals = *t.total();
    for (name, get) in xplacer_obs::Sample::FIELDS {
        let sum: u64 = t.global().iter().map(get).sum();
        assert_eq!(sum, get(&totals), "{name} not conserved across merges");
    }
    let event_faults = trace
        .events
        .iter()
        .filter(|e| e.event.kind_name() == "page_fault")
        .count() as u64;
    assert_eq!(totals.faults, event_faults, "faults vs the event stream");
}

#[test]
fn telemetry_totals_match_the_machine_counters() {
    // The synthetic workload never calls `reset_metrics`, so the machine
    // counters cover exactly the events the telemetry saw.
    let (trace, stats) = ping_pong_trace();
    let out = replay3(&trace);
    let totals = *out.telemetry.total();
    assert_eq!(totals.faults, stats.faults(), "faults vs machine counters");
    assert_eq!(
        totals.migrations_h2d + totals.migrations_d2h,
        stats.migrations(),
        "migrations vs machine counters"
    );
    assert!(totals.bytes_moved > 0);
}

// ----------------------------------------------------------------------
// Edge cases
// ----------------------------------------------------------------------

#[test]
fn empty_trace_replays_without_panicking_and_reports_zero() {
    let (trace, _) = record("empty", |_m| {});
    assert!(trace.events.is_empty(), "no work means no events");
    let out = replay3(&trace);
    assert_eq!(out.frames.len(), 3, "frame count is honored even when idle");
    let totals = *out.telemetry.total();
    for (name, get) in xplacer_obs::Sample::FIELDS {
        assert_eq!(get(&totals), 0, "{name} must be zero on an empty trace");
    }
    assert!(out.episodes.is_empty(), "no events, no episodes");
    let json = timeseries_json(
        &out.telemetry,
        &trace.workload,
        &trace.platform_name,
        &out.episodes,
    )
    .to_string_pretty();
    assert!(
        Json::parse(&json).is_ok(),
        "empty-trace timeseries must still serialize"
    );
}

#[test]
fn single_epoch_run_never_downsamples() {
    // An epoch wider than the whole run: every event lands in bucket 0
    // without any halving rounds, and that one bucket carries the totals.
    let (trace, _) = ping_pong_trace();
    let cfg = TelemetryConfig {
        epoch_ns: 1e12,
        max_buckets: 8,
    };
    let out = replay(
        &trace,
        cfg,
        OnlineConfig::default(),
        1,
        &DashOpts {
            ascii: true,
            ..DashOpts::default()
        },
    );
    let t = &out.telemetry;
    assert_eq!(t.downsamples, 0, "one epoch must never trigger a merge");
    assert_eq!(t.global().len(), 1, "all events fold into a single bucket");
    let totals = *t.total();
    for (name, get) in xplacer_obs::Sample::FIELDS {
        assert_eq!(
            get(&t.global()[0]),
            get(&totals),
            "{name}: the single bucket must carry the whole run"
        );
    }
}

#[test]
fn sparkline_folding_to_minimum_buckets_conserves_every_counter() {
    // The opposite extreme: the smallest legal cap (Telemetry requires
    // two buckets to merge) over a very fine epoch forces every halving
    // round the trace can produce, folding the whole run into a
    // two-cell sparkline.
    let (trace, _) = lulesh_trace();
    let cfg = TelemetryConfig {
        epoch_ns: 64.0,
        max_buckets: 2,
    };
    let out = replay(
        &trace,
        cfg,
        OnlineConfig::default(),
        1,
        &DashOpts {
            ascii: true,
            ..DashOpts::default()
        },
    );
    let t = &out.telemetry;
    assert!(
        t.downsamples > 0,
        "a 64 ns epoch over a multi-ms run must fold repeatedly"
    );
    assert!(t.global().len() <= 2, "cap of 2 leaves at most two buckets");
    let totals = *t.total();
    for (name, get) in xplacer_obs::Sample::FIELDS {
        let sum: u64 = t.global().iter().map(get).sum();
        assert_eq!(sum, get(&totals), "{name} lost in the fold");
    }
    let last = out.frames.last().unwrap();
    assert!(last.is_ascii(), "fully folded frame must still render");
}

// ----------------------------------------------------------------------
// Detection
// ----------------------------------------------------------------------

#[test]
fn ping_pong_workload_yields_an_attributed_episode_everywhere() {
    let (trace, _) = ping_pong_trace();
    let out = replay3(&trace);
    let ep = out
        .episodes
        .iter()
        .find(|e| e.kind == EpisodeKind::PingPong)
        .expect("alternating CPU/GPU touches must yield a ping-pong episode");
    assert!(ep.span_ns() > 0.0, "episode must span simulated time");
    assert!(ep.cost_ns > 0.0, "episode must carry attributed cost");
    assert!(ep.trips >= 3, "at least min_flips migrations: {}", ep.trips);

    let last = out.frames.last().unwrap();
    assert!(
        last.contains("ping-pong"),
        "dashboard must show the episode"
    );
    let json = timeseries_json(
        &out.telemetry,
        &trace.workload,
        &trace.platform_name,
        &out.episodes,
    )
    .to_string_pretty();
    let doc = Json::parse(&json).unwrap();
    let eps = doc.get("episodes").and_then(Json::as_arr).unwrap();
    assert!(
        eps.iter().any(|e| {
            e.get("kind").and_then(Json::as_str) == Some("ping-pong")
                && e.get("cost_ns").and_then(Json::as_f64).unwrap_or(0.0) > 0.0
        }),
        "timeseries JSON must carry the costed episode"
    );
}

// ----------------------------------------------------------------------
// Golden dashboard snapshots
// ----------------------------------------------------------------------

fn check_frames(name: &str, trace: &EventTrace) {
    let out = replay3(trace);
    assert!(
        out.frames.iter().all(|f| f.is_ascii()),
        "--ascii frames must be pure ASCII"
    );
    let doc = out.frames.join("\n");
    if let Err(e) = check_or_bless(&golden_path(name), &doc) {
        panic!("{e}");
    }
}

#[test]
fn golden_top_replay_lulesh() {
    check_frames("top_lulesh.golden", &lulesh_trace().0);
}

#[test]
fn golden_top_replay_pathfinder() {
    check_frames("top_pathfinder.golden", &pathfinder_trace().0);
}
