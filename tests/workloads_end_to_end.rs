//! Workload + tracer + detector end-to-end: each paper workload run
//! traced on the simulator, with its Table II / §IV findings checked
//! through the public APIs only.

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, fill_ratio, MapKind};
use xplacer_core::{analyze, attach_tracer, summarize, AnalysisConfig, Finding, FindingKind};
use xplacer_integration_tests::test_machine;
use xplacer_workloads::lulesh::{Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::register_names;
use xplacer_workloads::rodinia::{backprop, gaussian, lud, nn, pathfinder};
use xplacer_workloads::smith_waterman::{SmithWaterman, SwConfig, SwVariant};

#[test]
fn lulesh_domain_flags_alternating_every_steady_step() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let cfg = LuleshConfig::new(4, 3);
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::Baseline);
    register_names(&tracer, &l.names());
    let mut flagged_steps = 0;
    l.run(&mut m, cfg.steps, |_, _| {
        let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
        if report
            .for_alloc("dom")
            .any(|f| f.kind() == FindingKind::Alternating)
        {
            flagged_steps += 1;
        }
        tracer.borrow_mut().end_epoch();
    });
    assert_eq!(flagged_steps, cfg.steps, "dom must alternate every step");
}

#[test]
fn lulesh_dup_domain_clears_the_finding_on_the_gpu_copy() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let cfg = LuleshConfig::new(4, 2);
    let mut l = Lulesh::setup(&mut m, cfg, LuleshVariant::DupDomain);
    register_names(&tracer, &l.names());
    // Skip the setup epoch (initialization writes both domains).
    tracer.borrow_mut().end_epoch();
    l.run(&mut m, cfg.steps, |_, _| {});
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    // The GPU-side domain copy is only read by the GPU in steady state:
    // no alternating accesses on it.
    assert!(
        !report
            .for_alloc("dom_gpu")
            .any(|f| f.kind() == FindingKind::Alternating),
        "dup-domain should not alternate on the GPU copy: {report}"
    );
}

#[test]
fn smith_waterman_interior_initialization_is_wasted() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let cfg = SwConfig::new(24, 12);
    let mut sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Baseline);
    register_names(&tracer, &sw.names());
    sw.run(&mut m, |_, _| {});
    let t = tracer.borrow();
    let e = t.smt.lookup(sw.h.addr).unwrap();
    // CPU wrote everything; the GPU consumed only the boundary.
    assert_eq!(fill_ratio(&extract(e, MapKind::CpuWrite)), 1.0);
    let consumed = fill_ratio(&extract(e, MapKind::GpuReadsCpuWrites));
    assert!(
        consumed < 0.2,
        "only the boundary should be consumed, got {consumed:.2}"
    );
}

#[test]
fn pathfinder_per_iteration_density_matches_iteration_count() {
    // N iterations → 1/N of gpuWall per iteration (the Table II claim,
    // parameterized).
    for (rows, pyramid) in [(41usize, 10usize), (101, 20), (61, 12)] {
        let n_iters = (rows - 1).div_ceil(pyramid);
        let mut m = test_machine();
        let tracer = attach_tracer(&mut m);
        let cfg = pathfinder::PathfinderConfig::new(512, rows, pyramid);
        let mut p =
            pathfinder::Pathfinder::setup(&mut m, cfg, pathfinder::PathfinderVariant::Baseline);
        register_names(&tracer, &p.names());
        tracer.borrow_mut().end_epoch(); // drop the bulk-copy epoch
        let wall = p.gpu_wall.addr;
        let mut densities = Vec::new();
        p.run(&mut m, |_, _| {
            let mut t = tracer.borrow_mut();
            let e = t.smt.lookup(wall).unwrap();
            densities.push(xplacer_core::antipattern::density::density(e));
            t.end_epoch();
        });
        assert_eq!(densities.len(), n_iters);
        let expect = 1.0 / n_iters as f64;
        for d in &densities {
            assert!(
                (d - expect).abs() < 0.6 * expect,
                "rows={rows} pyramid={pyramid}: density {d:.3} vs expected ~{expect:.3}"
            );
        }
    }
}

#[test]
fn backprop_findings_via_public_api() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let mut b = backprop::Backprop::setup(&mut m, backprop::BackpropConfig::new(512));
    register_names(&tracer, &b.names());
    b.run(&mut m);
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    assert!(report
        .for_alloc("output_hidden_cuda")
        .any(|f| matches!(f, Finding::UnusedAllocation { .. })));
    assert!(report
        .for_alloc("input_cuda")
        .any(|f| matches!(f, Finding::RoundTripUnmodified { .. })));
}

#[test]
fn gaussian_transfer_can_be_eliminated() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let mut g = gaussian::Gaussian::setup(&mut m, gaussian::GaussianConfig::new(32));
    register_names(&tracer, &g.names());
    g.run(&mut m);
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    assert!(
        report
            .for_alloc("m_cuda")
            .any(|f| matches!(f, Finding::TransferredOverwritten { .. })),
        "{report}"
    );
}

#[test]
fn lud_first_row_comes_back_unmodified() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let mut l = lud::Lud::setup(&mut m, lud::LudConfig::new(64));
    register_names(&tracer, &l.names());
    l.run(&mut m, |_, _| {});
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    let first_row = report.for_alloc("m_d").find_map(|f| match f {
        Finding::TransferredOutUnmodified {
            off_words,
            len_words,
            ..
        } => Some((*off_words, *len_words)),
        _ => None,
    });
    let (off, len) = first_row.expect("first-row finding");
    assert_eq!(off, 0);
    // 64 doubles = 128 words.
    assert_eq!(len, 128);
}

#[test]
fn nn_is_clean() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let mut n = nn::Nn::setup(&mut m, nn::NnConfig::new(1024));
    register_names(&tracer, &n.names());
    n.run(&mut m);
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    assert!(report.is_empty(), "NN should be clean: {report}");
}

#[test]
fn diagnostics_and_maps_are_consistent() {
    // The Fig-4 style counters and the access maps derive from the same
    // shadow: counts must agree.
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let cfg = SwConfig::new(10, 10);
    let mut sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Baseline);
    register_names(&tracer, &sw.names());
    sw.run(&mut m, |_, _| {});
    let t = tracer.borrow();
    let e = t.smt.lookup(sw.h.addr).unwrap();
    let s = xplacer_core::summarize_entry(e);
    assert_eq!(
        s.writes_g,
        extract(e, MapKind::GpuWrite).iter().filter(|&&b| b).count()
    );
    assert_eq!(
        s.r_cg,
        extract(e, MapKind::GpuReadsCpuWrites)
            .iter()
            .filter(|&&b| b)
            .count()
    );
    assert_eq!(
        s.alternating,
        extract(e, MapKind::Alternating)
            .iter()
            .filter(|&&b| b)
            .count()
    );
}

#[test]
fn csv_export_round_trips_counts() {
    let mut m = test_machine();
    let tracer = attach_tracer(&mut m);
    let p = m.alloc_managed::<f64>(32);
    tracer.borrow_mut().name(p.addr, "buf");
    for i in 0..16 {
        m.st(p, i, 1.0);
    }
    let summaries = summarize(&tracer.borrow().smt, true);
    let csv = xplacer_core::to_csv(&summaries);
    let line = csv.lines().nth(1).unwrap();
    let cols: Vec<&str> = line.split(',').collect();
    assert_eq!(cols[0], "buf");
    assert_eq!(cols[4], "32"); // writes_c: 16 f64 = 32 words
    assert_eq!(cols[10], "50.00"); // density
}

#[test]
fn oversubscription_shows_up_in_stats_not_results() {
    let cfg = SwConfig::square(200);
    let run = |mem: u64| {
        let mut m = Machine::new(platform::intel_pascal());
        m.set_gpu_mem_bytes(mem);
        xplacer_workloads::smith_waterman::run_sw(&mut m, cfg, SwVariant::Baseline)
    };
    let plenty = run(1 << 30);
    let scarce = run(6 * 64 * 1024); // six pages
    assert_eq!(plenty.check, scarce.check, "results must not change");
    assert_eq!(plenty.stats.evictions, 0);
    assert!(scarce.stats.evictions > 0);
    assert!(scarce.elapsed_ns > plenty.elapsed_ns);
}
