//! Minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion API the workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then a timed
//! batch sized to run for roughly a tenth of a second — and reports
//! mean time per iteration. There is no statistical analysis, HTML
//! report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one closure. Obtained inside `bench_function` /
/// `bench_with_input` callbacks.
pub struct Bencher {
    /// Mean wall-clock time per iteration of the last `iter` call.
    mean: Duration,
    /// Iterations used for the timed batch.
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            mean: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~20ms elapse to size the batch.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            calib_iters += 1;
            if calib_start.elapsed() >= Duration::from_millis(20) {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        // Aim for ~100ms of measurement, capped to keep suites fast.
        let iters = ((0.1 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean = elapsed / iters as u32;
        self.iters = iters;
    }
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{00b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!(
        "{name:<50} time: {:>12}   ({} iterations)",
        format_duration(b.mean),
        b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup { _c: self, name }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(benches, f1, f2, ...)` — bundle bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(benches)` — entry point for `harness = false` benches.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
