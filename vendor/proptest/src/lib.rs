//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace uses:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any::<T>()`, range strategies, tuple strategies, `.prop_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from the real crate, on purpose:
//!
//! * generation is fully deterministic — the RNG is seeded from the test
//!   function's name, so every run explores the same cases;
//! * there is no shrinking — the failing case is reported as-is;
//! * strategies are simple uniform samplers (no size-biased growth).

/// Deterministic RNG (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed the RNG from an arbitrary string (the test name), so each
    /// test gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A failed property assertion (returned by `prop_assert*` so the
/// harness can report the case number).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Object-safe value generator. The combinator methods live on
/// [`StrategyExt`] so boxed trait objects still work.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinators over any [`Strategy`].
pub trait StrategyExt: Strategy + Sized {
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type behind a cheaply clonable handle
    /// (the real proptest's `BoxedStrategy` is also reference-counted).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }

    /// Recursive strategies: start from `self` as the leaf generator and
    /// apply `branch` `depth` times, where each application may embed the
    /// previous level as a sub-strategy. Because the handle passed to
    /// `branch` is the *finite* previous level (not a lazy self
    /// reference), recursion depth is bounded by construction — no
    /// probabilistic depth control is needed, unlike the real crate's
    /// `(depth, desired_size, expected_branch_size, branch)` signature.
    fn prop_recursive<F>(self, depth: u32, branch: F) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = branch(level.clone());
        }
        level
    }
}

/// A clonable, type-erased strategy handle (see [`StrategyExt::boxed`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy> StrategyExt for S {}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Box a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among several boxed strategies of one value type.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spread over a practical range.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = (rng.below(61) as i32 - 30) as f64;
        mantissa * 10f64.powf(scale)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Constant strategy (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// `vec(element, len_range)`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, StrategyExt, TestCaseError,
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                l,
                r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The `proptest! { ... }` block: each contained `#[test] fn name(args in
/// strategies) { body }` becomes a zero-argument test running `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {case} of {} failed: {}", config.cases, e.message);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = crate::TestRng::deterministic("range");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-4i64..5), &mut rng);
            assert!((-4..5).contains(&v));
            let u = Strategy::generate(&(1usize..24), &mut rng);
            assert!((1..24).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u64..10, 1..40), &mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        #[derive(Debug, PartialEq)]
        enum Op {
            A(u16),
            B(bool),
        }
        let s = prop_oneof![(1u16..200).prop_map(Op::A), any::<bool>().prop_map(Op::B),];
        let mut rng = crate::TestRng::deterministic("oneof");
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..200 {
            match Strategy::generate(&s, &mut rng) {
                Op::A(v) => {
                    assert!((1..200).contains(&v));
                    seen_a = true;
                }
                Op::B(_) => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn boxed_handles_clone_and_share_generation() {
        let s = (0u64..10).prop_map(|v| v * 2).boxed();
        let t = s.clone();
        let mut rng = crate::TestRng::deterministic("boxed");
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
            let w = Strategy::generate(&t, &mut rng);
            assert!(w % 2 == 0 && w < 20);
        }
    }

    #[test]
    fn prop_recursive_bounds_depth_and_reaches_it() {
        // Expression-shaped tree: leaves are 0, branches add one level.
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = crate::Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(4, |inner| {
                prop_oneof![
                    crate::Just(()).prop_map(|_| Tree::Leaf),
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                ]
                .boxed()
            });
        let mut rng = crate::TestRng::deterministic("recursive");
        let mut max_seen = 0;
        for _ in 0..300 {
            let t = Strategy::generate(&s, &mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth {d} escaped the bound");
            max_seen = max_seen.max(d);
        }
        assert!(
            max_seen >= 2,
            "recursion never fired (max depth {max_seen})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, config is honoured.
        #[test]
        fn macro_generates_and_checks(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + u64::from(flag) < 101, true, "with x={}", x);
        }
    }
}
